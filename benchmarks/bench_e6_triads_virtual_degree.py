"""E6 — Lemmas 15/16 and Figures 2/3: slack triads and the pair graph.

Counts triads (one per Type-I+ clique, vertex-disjoint), measures the
slack-pair conflict graph G_V's maximum degree against the Lemma 16
bound Delta - 2, and exports a Figure 2/3-style artifact (the triads
plus G_V's edges) for plotting.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_params,
    hard_workload,
    print_table,
    save_artifact,
    workload_acd,
)
from repro.core import (
    build_pair_conflict_graph,
    classify_cliques,
    compute_balanced_matching,
    form_slack_triads,
    sparsify_matching,
)
from repro.local import RoundLedger
from repro.verify import check_lemma15, check_lemma16

_ROWS: list[dict] = []


@pytest.mark.parametrize("num_cliques", [68, 136, 272])
def test_triads_and_virtual_degree(benchmark, once, num_cliques):
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    classification = classify_cliques(instance.network, acd)
    params = bench_params()

    def run():
        ledger = RoundLedger()
        balanced = compute_balanced_matching(
            instance.network, classification, params=params, ledger=ledger
        )
        sparsified = sparsify_matching(
            instance.network, classification, balanced,
            params=params, ledger=ledger,
        )
        triads, stats = form_slack_triads(
            instance.network, classification, sparsified,
            params=params, ledger=ledger,
        )
        return triads, stats

    triads, stats = once(benchmark, run)
    check_lemma15(instance.network, classification, triads)
    gv_degree = check_lemma16(instance.network, triads, instance.delta)
    virtual = build_pair_conflict_graph(instance.network, triads)
    row = {
        "label": f"t={num_cliques}",
        "triads": len(triads),
        "pair_vertices_worst": stats["worst_pair_vertices_per_clique"],
        "gv_nodes": virtual.n,
        "gv_edges": virtual.edge_count,
        "gv_max_degree": gv_degree,
        "lemma16_bound": instance.delta - 2,
    }
    _ROWS.append(row)
    if num_cliques == 68:
        save_artifact(
            "e6_figure2_3_structures",
            {
                "triads": [
                    {"clique": t.clique, "slack": t.slack, "pair": t.pair}
                    for t in triads
                ],
                "virtual_edges": virtual.edges(),
            },
        )


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "triads", "worst pair-vertices/clique", "G_V nodes",
         "G_V edges", "G_V max degree", "Lemma 16 bound"],
        [
            [r["label"], r["triads"], r["pair_vertices_worst"],
             r["gv_nodes"], r["gv_edges"], r["gv_max_degree"],
             r["lemma16_bound"]]
            for r in _ROWS
        ],
        title="E6 / Lemmas 15-16, Figures 2-3: triads and G_V",
    )
    save_artifact("e6_triads_virtual_degree", _ROWS)
