"""EC — Chaos: message loss vs surviving-coloring validity.

The paper's pipelines assume reliable synchronous rounds; this
experiment measures what a coloring protocol *loses* when that
assumption breaks.  A deliberately fault-sensitive randomized
(Δ+1)-trial coloring runs on the E2 hard workload (reduced scale)
under seeded :class:`~repro.local.faults.FaultPlan` drop rates, and
each surviving output is judged by
:func:`repro.verify.check_graceful_degradation`:

* ``p = 0`` must be ``intact`` — the protocol is correct fault-free.
* Small ``p`` is often absorbed (proposal messages are redundant);
  growing ``p`` starts dropping *finalize* announcements, which is
  precisely what manufactures monochromatic edges (``violated``).
* A crash-stop schedule degrades coverage but must never corrupt the
  surviving subgraph (``degraded``, zero violations).

Every cell is a pure function of ``(workload, algorithm seed, plan)``,
so the artifact is byte-stable across runs — the chaos sweep is itself
a determinism regression test for the fault-injection engine.
"""

from __future__ import annotations

import random

from repro.bench import hard_workload, print_table, save_artifact
from repro.local import DistributedAlgorithm, FaultPlan
from repro.verify import check_graceful_degradation

#: Reduced-scale E2 workload (same generator as the Theorem 2 runs).
NUM_CLIQUES = 16
DELTA = 8

DROP_RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4)
SEEDS = (0, 1, 2, 3)
#: Chaos runs are cut off rather than allowed to spin forever.
ROUND_BUDGET = 300

_ROWS: list[dict] = []


class RandomizedTrialColoring(DistributedAlgorithm):
    """Randomized (Δ+1)-coloring by proposal/finalize rounds.

    Each node proposes a random candidate color; a proposal conflicting
    with a finalized neighbor color or with a higher-uid rival proposal
    is redrawn from the free palette, otherwise the node finalizes,
    announces, and halts.  A node whose neighbors have all finalized
    completes from the free palette directly.

    Correct in the fault-free model — and *honestly* fragile under
    message loss: a dropped finalize announcement removes exactly the
    information that prevents a monochromatic edge, so drop rates
    translate into measurable violations instead of being masked.
    """

    name = "randomized-trial-coloring"

    def __init__(self, num_colors: int, seed: int = 0):
        self.num_colors = num_colors
        self.seed = seed

    def on_start(self, node, api):
        rng = random.Random((self.seed << 32) ^ node.uid)
        candidate = rng.randrange(self.num_colors)
        node.state.update(
            rng=rng, taken=set(), done=set(), candidate=candidate
        )
        if not node.neighbors:
            api.halt(candidate)
            return
        api.broadcast(("c", node.uid, candidate))

    def _draw_free(self, state) -> int:
        free = [
            color for color in range(self.num_colors)
            if color not in state["taken"]
        ]
        return free[state["rng"].randrange(len(free))]

    def on_round(self, node, api, inbox):
        state = node.state
        taken, done = state["taken"], state["done"]
        rivals = []
        for _, message in inbox:
            if message[0] == "f":
                done.add(message[1])
                taken.add(message[2])
            else:
                rivals.append((message[1], message[2]))
        candidate = state["candidate"]
        if len(done) >= len(node.neighbors):
            # Every neighbor announced a final color: the free palette
            # (non-empty, since |taken| <= deg <= Δ < num_colors) is safe.
            if candidate in taken:
                candidate = self._draw_free(state)
            api.broadcast(("f", node.uid, candidate))
            api.halt(candidate)
            return
        conflicted = candidate in taken or any(
            color == candidate and uid > node.uid for uid, color in rivals
        )
        if conflicted:
            candidate = self._draw_free(state)
            state["candidate"] = candidate
            api.broadcast(("c", node.uid, candidate))
        else:
            api.broadcast(("f", node.uid, candidate))
            api.halt(candidate)


def chaos_cell(seed: int, plan: FaultPlan, label: str) -> dict:
    instance = hard_workload(NUM_CLIQUES, DELTA)
    network = instance.network
    num_colors = network.max_degree + 1
    result = network.run(
        RandomizedTrialColoring(num_colors, seed=seed),
        faults=None if plan.is_noop else plan,
    )
    report = check_graceful_degradation(
        network, result.outputs, num_colors, crashed=result.crashed_nodes
    )
    return {
        "label": label,
        "drop_probability": plan.drop_probability,
        "seed": seed,
        "rounds": result.rounds,
        "messages": result.messages,
        "dropped_messages": result.dropped_messages,
        "crashed": len(result.crashed_nodes),
        **report.summary(),
    }


def test_drop_rate_sweep(benchmark, once):
    def sweep():
        rows = []
        for drop in DROP_RATES:
            for seed in SEEDS:
                plan = FaultPlan(
                    seed=seed, drop_probability=drop,
                    round_budget=ROUND_BUDGET,
                )
                rows.append(chaos_cell(seed, plan, f"p={drop} seed={seed}"))
        return rows

    rows = once(benchmark, sweep)
    _ROWS.extend(rows)
    fault_free = [row for row in rows if row["drop_probability"] == 0.0]
    # Fault-free the protocol is a proper coloring, every seed.
    assert all(row["status"] == "intact" for row in fault_free)
    assert all(row["dropped_messages"] == 0 for row in fault_free)
    # Heavy loss must surface as *measured* violations, not be masked.
    heavy = [row for row in rows if row["drop_probability"] >= 0.2]
    assert any(row["violations"] > 0 for row in heavy)
    benchmark.extra_info["violations_by_drop"] = {
        str(drop): sum(
            row["violations"] for row in rows
            if row["drop_probability"] == drop
        )
        for drop in DROP_RATES
    }


def test_crash_schedule_degrades_without_violations(benchmark, once):
    instance = hard_workload(NUM_CLIQUES, DELTA)
    crashes = tuple((v, 2) for v in range(0, instance.network.n, 20))
    plan = FaultPlan(seed=1, crashes=crashes, round_budget=ROUND_BUDGET)

    row = once(benchmark, chaos_cell, 1, plan, "crash-stop 7/128 @ r2")
    _ROWS.append(row)
    assert row["status"] == "degraded"
    assert row["violations"] == 0  # survivors stay consistent
    assert row["crashed"] == len(crashes)


def test_sweep_is_deterministic(benchmark, once):
    plan = FaultPlan(seed=1, drop_probability=0.2, round_budget=ROUND_BUDGET)

    def twice():
        return (
            chaos_cell(1, plan, "det"),
            chaos_cell(1, plan, "det"),
        )

    first, second = once(benchmark, twice)
    # Same plan → bit-identical rows, fault accounting included.
    assert first == second


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["label", "rounds", "dropped", "status", "colored", "violations"],
        [
            [row["label"], row["rounds"], row["dropped_messages"],
             row["status"], row["colored_live"], row["violations"]]
            for row in _ROWS
        ],
        title=f"EC / chaos sweep on hard({NUM_CLIQUES}, {DELTA})",
    )
    save_artifact("chaos_drop_sweep", _ROWS)
