"""E13 — The regime frontier: where do the paper's constants break?

The paper remarks (below Definition 4) that Delta < 63 dense graphs are
trivial at epsilon = 1/63, and Lemma 11's arithmetic needs Delta large
relative to the sub-clique count.  This experiment sweeps Delta
downward at matched epsilon = 4/Delta (the ACD boundary for blown-up
cliques) and records, per Delta, whether the deterministic pipeline
succeeds or which named guarantee refuses first — the *measured* regime
boundary of the implementation.
"""

from __future__ import annotations

import pytest

from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic
from repro.errors import InvariantViolation, NotDenseError, ReproError
from repro.graphs import hard_clique_graph
from repro.bench import print_table, save_artifact
from repro.verify.coloring import verify_coloring

_ROWS: list[dict] = []

DELTAS = [6, 8, 10, 12, 16, 24, 32]


@pytest.mark.parametrize("delta", DELTAS)
def test_regime_boundary(benchmark, once, delta):
    num_cliques = max(2 * delta + 2, 34)
    if num_cliques % 2:
        num_cliques += 1
    instance = hard_clique_graph(num_cliques, delta, seed=1)
    params = AlgorithmParameters(epsilon=min(0.45, 4.0 / delta))

    def run():
        try:
            result = delta_color_deterministic(
                instance.network, params=params
            )
            verify_coloring(instance.network, result.colors, delta)
            return ("OK", result.rounds, None)
        except (InvariantViolation, NotDenseError) as error:
            return ("REFUSED", None, str(error).split(";")[0])
        except ReproError as error:  # pragma: no cover - unexpected class
            return ("ERROR", None, str(error))

    status, rounds, reason = once(benchmark, run)
    _ROWS.append(
        {
            "delta": delta,
            "epsilon": round(params.epsilon, 3),
            "n": instance.n,
            "status": status,
            "rounds": rounds if rounds is not None else "-",
            "reason": reason or "-",
        }
    )
    # The pipeline must never produce an unverified coloring: either OK
    # or a typed refusal naming the broken guarantee.
    assert status in ("OK", "REFUSED")


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["Delta", "epsilon", "n", "status", "rounds", "refusal reason"],
        [
            [r["delta"], r["epsilon"], r["n"], r["status"], r["rounds"],
             r["reason"]]
            for r in sorted(_ROWS, key=lambda x: x["delta"])
        ],
        title="E13: the measured regime boundary of the deterministic pipeline",
    )
    save_artifact("e13_regime", _ROWS)
