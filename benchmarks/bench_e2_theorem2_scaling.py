"""E2 — Theorem 2: randomized rounds vs n, and the shattering statistic.

The randomized algorithm's rounds should be essentially flat in n
(O(Delta + log log n) with tiny constants at these scales), and the
shattered components — hard cliques beyond the T-node slack horizon —
must stay small (the paper: poly(Delta) * log n vertices w.h.p.).  A
low-activation variant deliberately produces components to measure
their size distribution.

Cells are defined in :mod:`repro.runner.presets` and executed through
the campaign runner, so this benchmark, ``repro campaign --preset e2``,
and any parallel sweep share one definition.  Set ``REPRO_BENCH_JOBS``
to fan the cells across worker processes (timings then measure the
pool, not a single engine).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    SCALING_CLIQUES,
    hard_workload,
    print_table,
    save_artifact,
    workload_acd,
)
from repro.runner import e2_component_cell, e2_scaling_cell, run_campaign
from repro.runner.presets import E2_COMPONENT_SEEDS

_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

_ROWS: list[dict] = []


def _run_cell_row(benchmark, once, cell):
    # Prewarm the cached workload so the timer sees the run, not graph
    # generation + ACD (the pre-runner benchmarks measured the same way).
    hard_workload(cell.num_cliques)
    workload_acd(cell.num_cliques)
    campaign = once(benchmark, run_campaign, [cell], jobs=_JOBS)
    row = campaign.rows[0]
    benchmark.extra_info["rounds"] = row["rounds"]
    benchmark.extra_info["messages"] = row["messages"]
    benchmark.extra_info["phase_rounds"] = row["breakdown"]
    return row


@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_randomized_scaling(benchmark, once, num_cliques):
    row = _run_cell_row(benchmark, once, e2_scaling_cell(num_cliques))
    _ROWS.append(row)


@pytest.mark.parametrize("seed", list(E2_COMPONENT_SEEDS))
def test_component_size_distribution(benchmark, once, seed):
    """Sparse T-nodes (p = 0.02) force leftover components."""
    row = _run_cell_row(benchmark, once, e2_component_cell(seed))
    _ROWS.append(row)


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "n", "rounds", "T-nodes", "bad cliques", "components",
         "max component"],
        [
            [r["label"], r["n"], r["rounds"], r["shattering"].get("good"),
             r["shattering"].get("bad_cliques"),
             r["shattering"].get("num_components"),
             r["shattering"].get("max_component")]
            for r in _ROWS
        ],
        title="E2 / Theorem 2: randomized rounds and shattering",
    )
    save_artifact("e2_theorem2_scaling", _ROWS)
