"""E2 — Theorem 2: randomized rounds vs n, and the shattering statistic.

The randomized algorithm's rounds should be essentially flat in n
(O(Delta + log log n) with tiny constants at these scales), and the
shattered components — hard cliques beyond the T-node slack horizon —
must stay small (the paper: poly(Delta) * log n vertices w.h.p.).  A
low-activation variant deliberately produces components to measure
their size distribution.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    SCALING_CLIQUES,
    bench_params,
    hard_workload,
    print_table,
    record_result,
    result_row,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_randomized

_ROWS: list[dict] = []


@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_randomized_scaling(benchmark, once, num_cliques):
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    result = once(
        benchmark,
        delta_color_randomized,
        instance.network,
        params=bench_params(),
        acd=acd,
        seed=0,
    )
    record_result(benchmark, result)
    row = result_row(f"t={num_cliques}", result)
    row["shattering"] = result.stats["shattering"]
    _ROWS.append(row)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_component_size_distribution(benchmark, once, seed):
    """Sparse T-nodes (p = 0.02) force leftover components."""
    num_cliques = SCALING_CLIQUES[-1]
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    result = once(
        benchmark,
        delta_color_randomized,
        instance.network,
        params=bench_params(),
        acd=acd,
        seed=seed,
        activation_probability=0.02,
    )
    record_result(benchmark, result)
    row = result_row(f"p=0.02 seed={seed}", result)
    row["shattering"] = result.stats["shattering"]
    _ROWS.append(row)


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "n", "rounds", "T-nodes", "bad cliques", "components",
         "max component"],
        [
            [r["label"], r["n"], r["rounds"], r["shattering"].get("good"),
             r["shattering"].get("bad_cliques"),
             r["shattering"].get("num_components"),
             r["shattering"].get("max_component")]
            for r in _ROWS
        ],
        title="E2 / Theorem 2: randomized rounds and shattering",
    )
    save_artifact("e2_theorem2_scaling", _ROWS)
