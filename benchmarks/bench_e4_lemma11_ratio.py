"""E4 — Lemma 11: the HEG hypergraph's delta_H / r_H ratio.

Lemma 11 proves delta_H > 1.1 * r_H for the paper's (epsilon = 1/63,
q = 28) asymptotically; this bench measures the *actual* minimum degree
and rank of H across instance families, including the paper constants
at Delta = 63 and the adaptive sub-clique count our implementation
selects (DESIGN.md substitution).
"""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.bench import bench_params, hard_workload, print_table, save_artifact
from repro.constants import PAPER_PARAMETERS
from repro.core import classify_cliques, compute_balanced_matching
from repro.graphs import hard_clique_graph
from repro.local import RoundLedger

_ROWS: list[dict] = []

CASES = [
    ("Delta=16 eps=1/4 k=1", 34, 16, 0.25, 1),
    ("Delta=32 eps=1/8 k=1", 136, 32, 1.0 / 8.0, 1),
    ("Delta=32 eps=1/8 k=2", 136, 32, 1.0 / 8.0, 2),
    ("Delta=63 eps=1/63 (paper)", 130, 63, None, 1),
]


@pytest.mark.parametrize("case", [c[0] for c in CASES])
def test_lemma11_ratio(benchmark, once, case):
    label, cliques, delta, epsilon, k = next(c for c in CASES if c[0] == case)
    if delta == 32 and k == 1:
        instance = hard_workload(cliques)
    else:
        instance = hard_clique_graph(
            cliques, delta, external_per_vertex=k, seed=1
        )
    params = PAPER_PARAMETERS if epsilon is None else bench_params(epsilon)
    acd = compute_acd(instance.network, epsilon=params.epsilon)
    classification = classify_cliques(instance.network, acd)

    def run():
        return compute_balanced_matching(
            instance.network, classification, params=params,
            ledger=RoundLedger(),
        )

    balanced = once(benchmark, run)
    stats = balanced.stats
    benchmark.extra_info.update(stats)
    _ROWS.append(
        {
            "label": label,
            "hard": len(classification.hard),
            "easy": len(classification.easy),
            "q_eff": stats["subclique_count_effective"],
            "rank_H": stats.get("rank_H"),
            "min_degree_H": stats.get("min_degree_H"),
            "ratio": stats.get("heg_ratio"),
            "lemma11": stats.get("lemma11_satisfied"),
        }
    )
    assert stats.get("min_degree_H", 1) > stats.get("rank_H", 0)


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["instance", "hard", "easy", "q_eff", "r_H", "delta_H",
         "delta_H/r_H", ">1.1 (Lemma 11)"],
        [
            [r["label"], r["hard"], r["easy"], r["q_eff"], r["rank_H"],
             r["min_degree_H"], r["ratio"], r["lemma11"]]
            for r in _ROWS
        ],
        title="E4 / Lemma 11: measured hypergraph slack",
    )
    save_artifact("e4_lemma11_ratio", _ROWS)
