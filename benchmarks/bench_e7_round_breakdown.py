"""E7 — Lemma 18: the round-complexity decomposition, measured.

Lemma 18 bounds Algorithm 2 by T_MM + T_SP + T_deg+1 + T_HEG; this
bench reports each term's measured share at two scales (and the easy
phase's Lemma 20 terms on a mixed instance).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_params,
    hard_workload,
    mixed_workload,
    print_table,
    record_result,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_deterministic

_ROWS: list[dict] = []

CASES = {
    "hard t=68": (68, 0.0),
    "hard t=272": (272, 0.0),
    "mixed t=136": (136, 0.25),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_round_breakdown(benchmark, once, case):
    num_cliques, easy_fraction = CASES[case]
    if easy_fraction:
        instance = mixed_workload(num_cliques, easy_fraction=easy_fraction)
    else:
        instance = hard_workload(num_cliques)
    acd = workload_acd(
        num_cliques, easy_fraction=easy_fraction
    )
    result = once(
        benchmark,
        delta_color_deterministic,
        instance.network,
        params=bench_params(),
        acd=acd,
    )
    record_result(benchmark, result)
    ledger = result.ledger
    _ROWS.append(
        {
            "label": case,
            "total": result.rounds,
            "T_MM": ledger.rounds_for("hard/phase1/maximal-matching"),
            "T_HEG": ledger.rounds_for("hard/phase1/heg"),
            "T_SP": ledger.rounds_for("hard/phase2"),
            "T_deg+1": (
                ledger.rounds_for("hard/phase4")
                + ledger.rounds_for("easy/layer")
            ),
            "easy_rest": (
                ledger.rounds_for("easy/ruling-set")
                + ledger.rounds_for("easy/bfs-layering")
                + ledger.rounds_for("easy/loophole-bruteforce")
            ),
        }
    )


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "total", "T_MM", "T_HEG", "T_SP (splitting)",
         "T_deg+1 (sweeps)", "easy phase (Lemma 20)"],
        [
            [r["label"], r["total"], r["T_MM"], r["T_HEG"], r["T_SP"],
             r["T_deg+1"], r["easy_rest"]]
            for r in _ROWS
        ],
        title="E7 / Lemma 18: per-subroutine round decomposition",
    )
    save_artifact("e7_round_breakdown", _ROWS)
