"""E5 — Lemmas 12/13: the F1 -> F2 -> F3 matching cascade.

Measures, per stage: matching size, per-clique outgoing (>= q for Type I
in F2, exactly 2 in F3) and incoming (below the Lemma 13 bound) edges,
and the repair/trim counts of the verified splitter.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_params,
    hard_workload,
    print_table,
    save_artifact,
    workload_acd,
)
from repro.core import (
    classify_cliques,
    compute_balanced_matching,
    sparsify_matching,
)
from repro.core.sparsify_phase import incoming_bound
from repro.local import RoundLedger

_ROWS: list[dict] = []


@pytest.mark.parametrize("num_cliques", [68, 136, 272])
def test_matching_cascade(benchmark, once, num_cliques):
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    classification = classify_cliques(instance.network, acd)
    params = bench_params()
    clique_of = {
        v: index
        for index in classification.hard
        for v in acd.cliques[index]
    }

    def run():
        ledger = RoundLedger()
        balanced = compute_balanced_matching(
            instance.network, classification, params=params, ledger=ledger
        )
        sparsified = sparsify_matching(
            instance.network, classification, balanced,
            params=params, ledger=ledger,
        )
        return balanced, sparsified

    balanced, sparsified = once(benchmark, run)
    outgoing_f2 = balanced.outgoing_per_clique(clique_of)
    incoming_f2 = balanced.incoming_per_clique(clique_of)
    outgoing_f3: dict[int, int] = {}
    incoming_f3: dict[int, int] = {}
    for tail, head in sparsified.edges:
        outgoing_f3[clique_of[tail]] = outgoing_f3.get(clique_of[tail], 0) + 1
        incoming_f3[clique_of[head]] = incoming_f3.get(clique_of[head], 0) + 1

    row = {
        "label": f"t={num_cliques}",
        "f1": len(balanced.f1),
        "f2": len(balanced.edges),
        "f3": len(sparsified.edges),
        "q_eff": balanced.stats["subclique_count_effective"],
        "min_out_f2": min(outgoing_f2.values()),
        "max_in_f2": max(incoming_f2.values(), default=0),
        "out_f3": sorted(set(outgoing_f3.values())),
        "max_in_f3": max(incoming_f3.values(), default=0),
        "in_bound": round(incoming_bound(instance.delta, params.epsilon), 1),
        "repairs": sparsified.stats["repairs"],
        "trimmed": sparsified.stats["trimmed"],
    }
    _ROWS.append(row)
    assert row["min_out_f2"] >= row["q_eff"]
    assert row["out_f3"] == [2]
    assert row["max_in_f3"] < row["in_bound"]


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "|F1|", "|F2|", "|F3|", "q_eff", "min out F2",
         "max in F2", "out F3", "max in F3", "Lemma13 bound",
         "repairs", "trimmed"],
        [
            [r["label"], r["f1"], r["f2"], r["f3"], r["q_eff"],
             r["min_out_f2"], r["max_in_f2"], r["out_f3"], r["max_in_f3"],
             r["in_bound"], r["repairs"], r["trimmed"]]
            for r in _ROWS
        ],
        title="E5 / Lemmas 12-13: matching cascade",
    )
    save_artifact("e5_matching_balance", _ROWS)
