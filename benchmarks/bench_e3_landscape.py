"""E3 — Figure 1's complexity landscape, measured.

One fixed dense hard instance, every algorithm in the repository: the
greedy (Delta+1) problem sits far below; the paper's deterministic
algorithm beats the DCC-layering baseline (whose symmetry breaking pays
the DCC diameter); the randomized algorithms sit orders below the
deterministic ones, mirroring the deterministic/randomized branches of
Figure 1.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    dcc_layering_coloring,
    ghkm_randomized_coloring,
    greedy_delta_plus_one,
)
from repro.bench import (
    bench_params,
    hard_workload,
    print_table,
    record_result,
    result_row,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_deterministic, delta_color_randomized

NUM_CLIQUES = 136

_ROWS: list[dict] = []


def _instance():
    return hard_workload(NUM_CLIQUES), workload_acd(NUM_CLIQUES)


CASES = {
    "delta+1 greedy (rand)": lambda net, acd: greedy_delta_plus_one(
        net, deterministic=False, seed=0
    ),
    "delta+1 greedy (det)": lambda net, acd: greedy_delta_plus_one(net),
    "ours deterministic (Thm 1)": lambda net, acd: delta_color_deterministic(
        net, params=bench_params(), acd=acd
    ),
    "DCC layering baseline (det)": lambda net, acd: dcc_layering_coloring(
        net, params=bench_params(), acd=acd
    ),
    "ours randomized (Thm 2)": lambda net, acd: delta_color_randomized(
        net, params=bench_params(), acd=acd, seed=0
    ),
    "GHKM-style baseline (rand)": lambda net, acd: ghkm_randomized_coloring(
        net, params=bench_params(), acd=acd, seed=0
    ),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_landscape(benchmark, once, case):
    instance, acd = _instance()
    result = once(benchmark, CASES[case], instance.network, acd)
    record_result(benchmark, result)
    _ROWS.append(result_row(case, result))


def teardown_module(module):
    if not _ROWS:
        return
    rows = sorted(_ROWS, key=lambda r: r["rounds"])
    print_table(
        ["algorithm", "colors", "rounds", "messages"],
        [
            [r["label"],
             "Delta+1" if "delta+1" in r["label"] else "Delta",
             r["rounds"], r["messages"]]
            for r in rows
        ],
        title=f"E3 / Figure 1 landscape (n={rows[0]['n']}, Delta={rows[0]['delta']})",
    )
    save_artifact("e3_landscape", rows)
