"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark executes its pipeline once per measurement (pedantic
mode) because a single run takes seconds; LOCAL round counts — the
quantity the paper's theorems are about — are attached as
``extra_info`` and printed as tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Measure one invocation and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
