"""E1 — Theorem 1: deterministic round complexity vs n at fixed Delta.

Regenerates the paper's headline deterministic claim: on dense hard
instances with constant Delta, total rounds stay O(Delta^2 + log n) —
the n-dependent terms (HEG, degree splitting) grow logarithmically
while the (deg+1)-sweep terms are flat in n (they are the documented
O(Delta^2) substitution for the paper's [MT20]/[GG24] black boxes).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    SCALING_CLIQUES,
    bench_params,
    hard_workload,
    print_table,
    record_result,
    result_row,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_deterministic

_ROWS: list[dict] = []


@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_deterministic_scaling(benchmark, once, num_cliques):
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    result = once(
        benchmark,
        delta_color_deterministic,
        instance.network,
        params=bench_params(),
        acd=acd,
    )
    record_result(benchmark, result)
    row = result_row(f"t={num_cliques}", result)
    row["heg_rounds"] = result.ledger.rounds_for("hard/phase1/heg")
    row["split_rounds"] = result.ledger.rounds_for("hard/phase2")
    _ROWS.append(row)


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["n", "Delta", "total rounds", "HEG (log n term)",
         "splitting (log n term)", "messages"],
        [
            [r["n"], r["delta"], r["rounds"], r["heg_rounds"],
             r["split_rounds"], r["messages"]]
            for r in _ROWS
        ],
        title="E1 / Theorem 1: deterministic rounds vs n (fixed Delta)",
    )
    save_artifact("e1_theorem1_scaling", _ROWS)
