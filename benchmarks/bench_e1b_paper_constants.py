"""E1b — Theorems 1/2 with the paper's exact constants.

Runs the full pipelines at epsilon = 1/63 on Delta = 63 instances (the
smallest Delta where the paper's epsilon admits non-trivial dense
graphs — remark below Definition 4) across an n-doubling sweep,
deterministic and randomized side by side.
"""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.bench import print_table, record_result, save_artifact
from repro.constants import PAPER_PARAMETERS
from repro.core import delta_color_deterministic, delta_color_randomized
from repro.graphs import hard_clique_graph

_ROWS: list[dict] = []
_CACHE: dict[int, tuple] = {}


def _setup(num_cliques: int):
    if num_cliques not in _CACHE:
        instance = hard_clique_graph(num_cliques, 63, seed=1)
        acd = compute_acd(instance.network)
        _CACHE[num_cliques] = (instance, acd)
    return _CACHE[num_cliques]


@pytest.mark.parametrize("num_cliques", [130, 260])
@pytest.mark.parametrize("method", ["deterministic", "randomized"])
def test_paper_constants(benchmark, once, num_cliques, method):
    instance, acd = _setup(num_cliques)
    if method == "deterministic":
        result = once(
            benchmark, delta_color_deterministic, instance.network,
            params=PAPER_PARAMETERS, acd=acd,
        )
    else:
        result = once(
            benchmark, delta_color_randomized, instance.network,
            params=PAPER_PARAMETERS, acd=acd, seed=0,
        )
    record_result(benchmark, result)
    row = {
        "label": f"{method} t={num_cliques}",
        "n": instance.n,
        "rounds": result.rounds,
        "messages": result.messages,
    }
    if method == "deterministic":
        row["q_eff"] = result.stats["phase1"]["subclique_count_effective"]
        row["heg_ratio"] = round(result.stats["phase1"]["heg_ratio"], 2)
        assert result.stats["phase2"]["incoming_bound_satisfied"]
    else:
        row["q_eff"] = "-"
        row["heg_ratio"] = "-"
    _ROWS.append(row)


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "n", "rounds", "messages", "q_eff", "delta_H/r_H"],
        [
            [r["label"], r["n"], r["rounds"], r["messages"], r["q_eff"],
             r["heg_ratio"]]
            for r in sorted(_ROWS, key=lambda x: (x["label"]))
        ],
        title="E1b / Theorems 1-2 at the paper constants (eps=1/63, Delta=63)",
    )
    save_artifact("e1b_paper_constants", _ROWS)
