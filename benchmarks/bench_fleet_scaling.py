"""EF — Fleet: shard-count scaling of the consistent-hash serving tier.

What sharding buys on THIS box must be stated honestly: the reference
machine exposes a single CPU, so N shard processes cannot parallelize
the coloring compute itself — a distinct-seed workload is flat across
shard counts (measured below as the control).  What does scale on one
core is **aggregate cache capacity**: each shard holds its own
``cache-size``-entry LRU, and because the router consistent-hashes the
cache key, the key space is *partitioned* across shards — N shards hold
N× the distinct hot keys with zero duplication.  Under a skewed (Zipf)
request stream whose hot set exceeds one shard's capacity, the fleet's
aggregate hit rate — and therefore throughput, since a hit skips an
~10ms pipeline run — grows with shard count.

Three measurements on the E2 hard workload (16 cliques, Δ=8, n=128,
randomized pipeline), all open-loop through the real ``repro fleet``
subprocess tree (router + N ``repro serve`` shards on UNIX sockets):

* **zipf sweep** — 192 hot keys, Zipf(s=1.0), per-shard LRU of 32
  entries, disk tier off: shard counts 1/2/4/8.  The acceptance bar:
  throughput strictly increases 1 → 2 → 4 (8 is recorded; by then the
  whole key space fits in aggregate memory, so the curve flattens at
  the hit-rate ceiling).  A cache-hit table accompanies the curve.
* **distinct-seed control** — the same fleet tiers under an all-miss
  stream: flat within noise on one core, which is the honest statement
  that compute does not scale here (it would on a multi-core box).
* **disk handoff** — a fleet writes its shared on-disk cache, exits,
  and a *fresh* fleet (cold memory) replays the stream from disk:
  results outlive both shard restarts and whole-fleet restarts.

Byte-identity is asserted per tier: probe seeds answered by every
shard count (and by the restarted fleet) must match the 1-shard
reference exactly — routing must be invisible in the bytes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.bench import print_table, save_artifact  # noqa: E402
from repro.graphs import hard_clique_graph  # noqa: E402
from repro.serve import LoadgenConfig, ServeClient, run_loadgen  # noqa: E402

CLIQUES, DELTA, GRAPH_SEED = 16, 8, 3
EPSILON = 0.25
METHOD = "randomized"
SHARD_COUNTS = (1, 2, 4, 8)
HOT_KEYS = 192
ZIPF_S = 1.0
PER_SHARD_CACHE = 32
ZIPF_REQUESTS = 800
CONTROL_REQUESTS = 128
PROBE_SEEDS = tuple(range(1000, 1006))

_ARTIFACT: dict = {}


@contextmanager
def fleet(shards: int, *extra: str, runtime_dir: str | None = None):
    """Boot a real ``repro fleet`` subprocess tree on a UNIX socket."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as tmp:
        sock = os.path.join(tmp, "router.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet",
             "--shards", str(shards), "--unix", sock,
             "--runtime-dir", runtime_dir or os.path.join(tmp, "rt"),
             "--probe-interval", "0.2", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        deadline = time.time() + 120
        while not os.path.exists(sock):
            if proc.poll() is not None:
                raise RuntimeError(
                    f"fleet exited early:\n{proc.stdout.read()}"
                )
            if time.time() > deadline:
                proc.kill()
                raise RuntimeError("fleet did not bind within 120s")
            time.sleep(0.05)
        try:
            yield sock
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    proc.kill()


def _loadgen(sock: str, **overrides) -> dict:
    options = dict(
        unix_path=sock,
        method=METHOD,
        workload="hard",
        cliques=CLIQUES,
        delta=DELTA,
        graph_seed=GRAPH_SEED,
        epsilon=EPSILON,
        base_seed=7,
        mode="open",
        concurrency=32,
    )
    options.update(overrides)
    report = run_loadgen(LoadgenConfig(**options))
    assert report["completed"] == report["requests"], report["by_status"]
    return report


async def _probe(sock: str) -> dict[int, str]:
    """Canonical result JSON for the probe seeds, via the router."""
    instance = hard_clique_graph(CLIQUES, DELTA, seed=GRAPH_SEED)
    payload = {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }
    client = ServeClient(unix_path=sock)
    await client.connect()
    try:
        registered = await client.request(
            {"op": "register", "instance": payload}
        )
        assert registered.get("ok"), registered
        results: dict[int, str] = {}
        for seed in PROBE_SEEDS:
            response = await client.request({
                "op": "color", "method": METHOD, "seed": seed,
                "epsilon": EPSILON,
                "instance_hash": registered["instance_hash"],
            })
            assert response.get("ok"), response
            results[seed] = json.dumps(response["result"], sort_keys=True)
        return results
    finally:
        await client.close()


def _zipf_row(shards: int, report: dict) -> dict:
    cached = report["by_status"].get("cached", 0)
    return {
        "shards": shards,
        "throughput_rps": report["throughput_rps"],
        "cached": cached,
        "hit_rate": round(cached / report["requests"], 3),
        "p50_ms": report["latency_ms"]["p50"],
        "p99_ms": report["latency_ms"]["p99"],
    }


def test_zipf_throughput_scales_with_shard_count(benchmark, once):
    def sweep():
        rows = []
        probes = {}
        for shards in SHARD_COUNTS:
            with fleet(
                shards, "--cache-dir", "",  # memory LRUs only
                "--cache-size", str(PER_SHARD_CACHE),
            ) as sock:
                report = _loadgen(
                    sock, requests=ZIPF_REQUESTS,
                    hot_keys=HOT_KEYS, zipf_s=ZIPF_S,
                )
                probes[shards] = asyncio.run(_probe(sock))
            rows.append(_zipf_row(shards, report))
        return rows, probes

    rows, probes = once(benchmark, sweep)
    _ARTIFACT["zipf_sweep"] = rows
    _ARTIFACT["zipf_config"] = {
        "hot_keys": HOT_KEYS, "zipf_s": ZIPF_S,
        "per_shard_cache": PER_SHARD_CACHE, "requests": ZIPF_REQUESTS,
    }
    reference = probes[SHARD_COUNTS[0]]
    for shards, results in probes.items():
        assert results == reference, (
            f"shard count {shards} returned different bytes than the "
            f"1-shard reference"
        )
    _ARTIFACT["probe_seeds"] = list(PROBE_SEEDS)
    _ARTIFACT["probes_byte_identical"] = True
    by_count = {row["shards"]: row for row in rows}
    # Aggregate cache capacity must show up as throughput: strictly
    # monotone 1 -> 2 -> 4 shards (the acceptance bar).
    assert (
        by_count[1]["throughput_rps"]
        < by_count[2]["throughput_rps"]
        < by_count[4]["throughput_rps"]
    ), rows
    # And the mechanism must be the hit rate, not timing luck.
    assert (
        by_count[1]["hit_rate"]
        < by_count[2]["hit_rate"]
        < by_count[4]["hit_rate"]
    ), rows
    benchmark.extra_info["sweep"] = {
        str(row["shards"]): row["throughput_rps"] for row in rows
    }


def test_distinct_seed_control_is_flat_on_one_core(benchmark, once):
    def sweep():
        rows = []
        for shards in SHARD_COUNTS:
            with fleet(
                shards, "--cache-dir", "", "--cache-size", "0",
            ) as sock:
                report = _loadgen(sock, requests=CONTROL_REQUESTS)
            rows.append({
                "shards": shards,
                "throughput_rps": report["throughput_rps"],
                "p99_ms": report["latency_ms"]["p99"],
            })
        return rows

    rows = once(benchmark, sweep)
    _ARTIFACT["distinct_control"] = rows
    # No assertion on the shape beyond sanity: this is the honest
    # control showing compute does not scale on a single core.
    assert all(row["throughput_rps"] > 0 for row in rows)
    benchmark.extra_info["control"] = {
        str(row["shards"]): row["throughput_rps"] for row in rows
    }


def test_shared_disk_cache_survives_a_fleet_restart(benchmark, once):
    def measure():
        with tempfile.TemporaryDirectory(prefix="repro-bench-disk-") as tmp:
            cache_dir = os.path.join(tmp, "shared-cache")
            workload = dict(requests=256, hot_keys=64, zipf_s=ZIPF_S)
            with fleet(
                2, "--cache-dir", cache_dir, "--cache-size", "16",
                runtime_dir=os.path.join(tmp, "rt-a"),
            ) as sock:
                cold = _loadgen(sock, **workload)
                probes_a = asyncio.run(_probe(sock))
            # A brand-new fleet: cold memory, same shared disk tier.
            with fleet(
                2, "--cache-dir", cache_dir, "--cache-size", "16",
                runtime_dir=os.path.join(tmp, "rt-b"),
            ) as sock:
                warm = _loadgen(sock, **workload)
                probes_b = asyncio.run(_probe(sock))
        return cold, warm, probes_a, probes_b

    cold, warm, probes_a, probes_b = once(benchmark, measure)
    _ARTIFACT["disk_handoff"] = {
        "cold": _zipf_row(2, cold), "warm": _zipf_row(2, warm),
    }
    assert probes_a == probes_b, "restarted fleet changed response bytes"
    # The restarted fleet inherits every result from disk: (almost)
    # everything is a cache hit and throughput reflects it.
    assert warm["by_status"].get("cached", 0) > cold["by_status"].get(
        "cached", 0
    )
    assert warm["throughput_rps"] > cold["throughput_rps"]
    benchmark.extra_info["cold_rps"] = cold["throughput_rps"]
    benchmark.extra_info["warm_rps"] = warm["throughput_rps"]


def teardown_module(module):
    if not _ARTIFACT:
        return
    if "zipf_sweep" in _ARTIFACT:
        print_table(
            ["shards", "req/s", "cached", "hit rate", "p50 ms", "p99 ms"],
            [
                [row["shards"], row["throughput_rps"], row["cached"],
                 row["hit_rate"], row["p50_ms"], row["p99_ms"]]
                for row in _ARTIFACT["zipf_sweep"]
            ],
            title=f"EF Zipf(s={ZIPF_S}) open-loop throughput vs shard "
                  f"count ({HOT_KEYS} hot keys, {PER_SHARD_CACHE}-entry "
                  f"LRU per shard)",
        )
    if "distinct_control" in _ARTIFACT:
        print_table(
            ["shards", "req/s", "p99 ms"],
            [
                [row["shards"], row["throughput_rps"], row["p99_ms"]]
                for row in _ARTIFACT["distinct_control"]
            ],
            title="EF distinct-seed control (all-miss; flat on one core)",
        )
    if "disk_handoff" in _ARTIFACT:
        handoff = _ARTIFACT["disk_handoff"]
        print(
            f"EF disk handoff: cold {handoff['cold']['throughput_rps']} "
            f"req/s -> restarted fleet {handoff['warm']['throughput_rps']} "
            f"req/s (hit rate {handoff['cold']['hit_rate']} -> "
            f"{handoff['warm']['hit_rate']})"
        )
    path = save_artifact("fleet_scaling", _ARTIFACT)
    print(f"artifact: {path}")
