"""Engine microbenchmark: simulator rounds/sec across the three engines.

The hot-path overhaul (preallocated inbox buffers, int scheduling queue,
lazy broadcast expansion, zero-cost bandwidth accounting) and the
columnar backend (:mod:`repro.local.columnar` — numpy struct-of-arrays
delivery with lazy inbox views) are only worth their complexity if they
show up as throughput.  This benchmark runs the same workloads on the
rewritten fast engine, the columnar engine, and the frozen seed engine
(:mod:`repro.local.legacy`) and records simulated rounds per wall-second
for all three.

Two kinds of cases, all over the E2 Theorem 2 sweep graphs
(``hard_workload`` at the ``SCALING_CLIQUES`` sizes):

* ``storm-*`` / ``flood-*`` — engine-bound kernels where every node is
  active every round, measuring the per-message/per-round machinery in
  isolation.  The storm kernels are where the columnar >= 3x-over-fast
  target applies; flood (every inbox is read and reduced) is recorded
  for context.
* ``pipeline-*`` — the full randomized Theorem 2 run, where the engine
  shares the wall clock with ACD, classification, and central helpers;
  recorded for context (its speedup is necessarily smaller).

Timing is GC-neutral: each repetition runs with the collector disabled
(after a full collect), the same policy ``timeit`` applies, so the
numbers compare engine code instead of allocator back-pressure from
whatever ran earlier in the process.  The policy applies identically to
all three engines.

Artifact: ``benchmarks/artifacts/engine_microbench.json``.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.bench import (
    SCALING_CLIQUES,
    bench_params,
    hard_workload,
    print_table,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_randomized
from repro.local import (
    DistributedAlgorithm,
    columnar_available,
    force_columnar_engine,
    force_legacy_engine,
    run_legacy,
)

#: Full-activity rounds for the broadcast-storm kernel.
STORM_ROUNDS = 12

#: Timing repetitions (minimum is reported, standard microbench practice).
REPEATS = 3

_ROWS: list[dict] = []

requires_numpy = pytest.mark.skipif(
    not columnar_available(), reason="columnar engine needs numpy"
)


class BroadcastStorm(DistributedAlgorithm):
    """Every node broadcasts its round number for a fixed horizon.

    Maximally engine-bound: n * Delta messages per round, every node
    scheduled every round, payloads are single words.
    """

    name = "broadcast-storm"

    def __init__(self, rounds: int):
        self.rounds = rounds

    def on_start(self, node, api):
        api.broadcast(0)

    def on_round(self, node, api, inbox):
        if api.round >= self.rounds:
            api.halt(api.round)
            return
        api.broadcast(api.round)


class Flood(DistributedAlgorithm):
    """Min-distance flood from the uid-0 node (bursty activity)."""

    name = "flood"

    def on_start(self, node, api):
        if node.uid == 0:
            api.broadcast(0)
            api.halt(0)

    def on_round(self, node, api, inbox):
        distance = min(message for _, message in inbox) + 1
        api.broadcast(distance)
        api.halt(distance)


def _best_time(func) -> tuple[float, object]:
    """Min-of-REPEATS wall time with the GC disabled during each rep."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        gc.collect()
        enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            result = func()
            elapsed = time.perf_counter() - started
        finally:
            if enabled:
                gc.enable()
        best = min(best, elapsed)
    return best, result


def _record(label: str, kind: str, benchmark, fast_seconds: float,
            legacy_seconds: float, rounds: int, messages: int,
            columnar_seconds: float | None = None) -> dict:
    row = {
        "label": label,
        "kind": kind,
        "rounds": rounds,
        "messages": messages,
        "fast_seconds": round(fast_seconds, 6),
        "legacy_seconds": round(legacy_seconds, 6),
        "fast_rounds_per_sec": round(rounds / fast_seconds, 2),
        "legacy_rounds_per_sec": round(rounds / legacy_seconds, 2),
        # legacy-vs-fast, the original trajectory metric (name kept for
        # artifact compatibility with earlier reports).
        "speedup": round(legacy_seconds / fast_seconds, 3),
    }
    if columnar_seconds is not None:
        row["columnar_seconds"] = round(columnar_seconds, 6)
        row["columnar_rounds_per_sec"] = round(rounds / columnar_seconds, 2)
        row["columnar_speedup"] = round(fast_seconds / columnar_seconds, 3)
    if benchmark is not None:
        benchmark.extra_info.update(row)
    _ROWS.append(row)
    return row


@requires_numpy
@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_engine_kernel_storm(benchmark, once, num_cliques):
    network = hard_workload(num_cliques).network

    fast_seconds, result = _best_time(
        lambda: network.run(BroadcastStorm(STORM_ROUNDS))
    )
    legacy_seconds, legacy_result = _best_time(
        lambda: run_legacy(network, BroadcastStorm(STORM_ROUNDS))
    )

    def columnar_run():
        with force_columnar_engine():
            return network.run(BroadcastStorm(STORM_ROUNDS))

    columnar_seconds, columnar_result = _best_time(columnar_run)
    for other in (legacy_result, columnar_result):
        assert (other.rounds, other.messages) == (
            result.rounds, result.messages
        )
    once(benchmark, network.run, BroadcastStorm(STORM_ROUNDS))
    row = _record(f"storm t={num_cliques}", "kernel", benchmark,
                  fast_seconds, legacy_seconds,
                  result.rounds, result.messages,
                  columnar_seconds=columnar_seconds)
    # The fast-engine overhaul's target: >= 3x over the seed engine.
    assert row["speedup"] >= 2.0, row
    # The columnar backend's target: >= 3x over the fast engine on the
    # largest storm (2x here as the in-test safety margin against CI
    # noise; the committed artifact carries the honest numbers).
    assert row["columnar_speedup"] >= 2.0, row


@requires_numpy
def test_engine_kernel_flood(benchmark, once):
    network = hard_workload(SCALING_CLIQUES[1]).network
    fast_seconds, result = _best_time(lambda: network.run(Flood()))
    legacy_seconds, _ = _best_time(lambda: run_legacy(network, Flood()))

    def columnar_run():
        with force_columnar_engine():
            return network.run(Flood())

    columnar_seconds, _ = _best_time(columnar_run)
    once(benchmark, network.run, Flood())
    # Recorded for context, no columnar assert: flood consumes every
    # inbox, so the lazy-view payoff does not apply.
    _record(f"flood t={SCALING_CLIQUES[1]}", "kernel", benchmark,
            fast_seconds, legacy_seconds, result.rounds, result.messages,
            columnar_seconds=columnar_seconds)


def test_observability_overhead(benchmark, once):
    """The repro.obs collector must stay off the engine hot path.

    With no collector installed the engine does one module-global
    ``is None`` check per run; with one installed (aggregates only, no
    round sampling) the per-run cost is a single ``record_run`` call.
    Both must be noise against the storm kernel.  Round sampling
    (``sample_rounds=True``) adds a per-round tracer append and is
    recorded for context only.
    """
    from repro.obs import observed

    network = hard_workload(SCALING_CLIQUES[1]).network
    kernel = lambda: network.run(BroadcastStorm(STORM_ROUNDS))  # noqa: E731

    def observed_run(sample_rounds):
        def run():
            with observed(sample_rounds=sample_rounds):
                return kernel()
        return run

    base_seconds, result = _best_time(kernel)
    plain_seconds, _ = _best_time(observed_run(sample_rounds=False))
    sampled_seconds, _ = _best_time(observed_run(sample_rounds=True))
    once(benchmark, kernel)
    overhead = plain_seconds / base_seconds - 1.0
    row = {
        "label": f"obs-overhead t={SCALING_CLIQUES[1]}",
        "kind": "observability",
        "rounds": result.rounds,
        "messages": result.messages,
        "base_seconds": round(base_seconds, 6),
        "collector_seconds": round(plain_seconds, 6),
        "sampled_seconds": round(sampled_seconds, 6),
        "collector_overhead_pct": round(100 * overhead, 3),
        "sampled_overhead_pct": round(
            100 * (sampled_seconds / base_seconds - 1.0), 3
        ),
    }
    if benchmark is not None:
        benchmark.extra_info.update(row)
    _ROWS.append(
        {**row, "fast_rounds_per_sec": round(result.rounds / plain_seconds, 2),
         "legacy_rounds_per_sec": round(result.rounds / base_seconds, 2),
         "fast_seconds": row["collector_seconds"],
         "legacy_seconds": row["base_seconds"],
         "speedup": round(base_seconds / plain_seconds, 3)}
    )
    # Acceptance bar: an installed (non-sampling) collector costs < 3%.
    assert overhead < 0.03, row


@requires_numpy
@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_pipeline_context(benchmark, once, num_cliques):
    """Full Theorem 2 run: engine + central phases (context numbers)."""
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    params = bench_params()

    def fast_run():
        return delta_color_randomized(
            instance.network, params=params, acd=acd, seed=0
        )

    def legacy_run():
        with force_legacy_engine():
            return fast_run()

    def columnar_run():
        with force_columnar_engine():
            return fast_run()

    fast_seconds, result = _best_time(fast_run)
    legacy_seconds, legacy_result = _best_time(legacy_run)
    columnar_seconds, columnar_result = _best_time(columnar_run)
    # Engines are bit-identical.
    assert legacy_result.colors == result.colors
    assert columnar_result.colors == result.colors
    once(benchmark, fast_run)
    row = _record(f"pipeline t={num_cliques}", "pipeline", benchmark,
                  fast_seconds, legacy_seconds,
                  result.rounds, result.messages,
                  columnar_seconds=columnar_seconds)
    assert row["speedup"] >= 1.1, row


def teardown_module(module):
    if not _ROWS:
        return

    def col(row, key):
        value = row.get(key)
        return value if value is not None else "-"

    print_table(
        ["case", "kind", "rounds", "fast rounds/s", "legacy rounds/s",
         "columnar rounds/s", "fast/legacy", "columnar/fast"],
        [
            [r["label"], r["kind"], r["rounds"], r["fast_rounds_per_sec"],
             r["legacy_rounds_per_sec"], col(r, "columnar_rounds_per_sec"),
             f'{r["speedup"]:.2f}x',
             (f'{r["columnar_speedup"]:.2f}x'
              if "columnar_speedup" in r else "-")]
            for r in _ROWS
        ],
        title="Engine microbench: fast / legacy / columnar",
    )
    save_artifact("engine_microbench", _ROWS)
