"""Engine microbenchmark: simulator rounds/sec, new engine vs seed engine.

The hot-path overhaul (preallocated inbox buffers, int scheduling queue,
lazy broadcast expansion, zero-cost bandwidth accounting) is only worth
its complexity if it shows up as throughput.  This benchmark runs the
same workloads on the rewritten engine and on the frozen seed engine
(:mod:`repro.local.legacy`) and records simulated rounds per wall-second
for both — the perf trajectory baseline the repo previously lacked.

Two kinds of cases, all over the E2 Theorem 2 sweep graphs
(``hard_workload`` at the ``SCALING_CLIQUES`` sizes):

* ``storm-*`` / ``flood-*`` — engine-bound kernels where every node is
  active every round, measuring the per-message/per-round machinery in
  isolation.  These are where the >= 3x target applies.
* ``pipeline-*`` — the full randomized Theorem 2 run, where the engine
  shares the wall clock with ACD, classification, and central helpers;
  recorded for context (its speedup is necessarily smaller).

Artifact: ``benchmarks/artifacts/engine_microbench.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import (
    SCALING_CLIQUES,
    bench_params,
    hard_workload,
    print_table,
    save_artifact,
    workload_acd,
)
from repro.core import delta_color_randomized
from repro.local import DistributedAlgorithm, force_legacy_engine, run_legacy

#: Full-activity rounds for the broadcast-storm kernel.
STORM_ROUNDS = 12

#: Timing repetitions (minimum is reported, standard microbench practice).
REPEATS = 3

_ROWS: list[dict] = []


class BroadcastStorm(DistributedAlgorithm):
    """Every node broadcasts its round number for a fixed horizon.

    Maximally engine-bound: n * Delta messages per round, every node
    scheduled every round, payloads are single words.
    """

    name = "broadcast-storm"

    def __init__(self, rounds: int):
        self.rounds = rounds

    def on_start(self, node, api):
        api.broadcast(0)

    def on_round(self, node, api, inbox):
        if api.round >= self.rounds:
            api.halt(api.round)
            return
        api.broadcast(api.round)


class Flood(DistributedAlgorithm):
    """Min-distance flood from the uid-0 node (bursty activity)."""

    name = "flood"

    def on_start(self, node, api):
        if node.uid == 0:
            api.broadcast(0)
            api.halt(0)

    def on_round(self, node, api, inbox):
        distance = min(message for _, message in inbox) + 1
        api.broadcast(distance)
        api.halt(distance)


def _best_time(func) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _record(label: str, kind: str, benchmark, fast_seconds: float,
            legacy_seconds: float, rounds: int, messages: int) -> dict:
    row = {
        "label": label,
        "kind": kind,
        "rounds": rounds,
        "messages": messages,
        "fast_seconds": round(fast_seconds, 6),
        "legacy_seconds": round(legacy_seconds, 6),
        "fast_rounds_per_sec": round(rounds / fast_seconds, 2),
        "legacy_rounds_per_sec": round(rounds / legacy_seconds, 2),
        "speedup": round(legacy_seconds / fast_seconds, 3),
    }
    if benchmark is not None:
        benchmark.extra_info.update(row)
    _ROWS.append(row)
    return row


@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_engine_kernel_storm(benchmark, once, num_cliques):
    network = hard_workload(num_cliques).network

    fast_seconds, result = _best_time(
        lambda: network.run(BroadcastStorm(STORM_ROUNDS))
    )
    legacy_seconds, legacy_result = _best_time(
        lambda: run_legacy(network, BroadcastStorm(STORM_ROUNDS))
    )
    assert (legacy_result.rounds, legacy_result.messages) == (
        result.rounds, result.messages
    )
    once(benchmark, network.run, BroadcastStorm(STORM_ROUNDS))
    row = _record(f"storm t={num_cliques}", "kernel", benchmark,
                  fast_seconds, legacy_seconds,
                  result.rounds, result.messages)
    # The overhaul's target: >= 3x engine throughput on the E2 sweep.
    assert row["speedup"] >= 2.0, row


def test_engine_kernel_flood(benchmark, once):
    network = hard_workload(SCALING_CLIQUES[1]).network
    fast_seconds, result = _best_time(lambda: network.run(Flood()))
    legacy_seconds, _ = _best_time(lambda: run_legacy(network, Flood()))
    once(benchmark, network.run, Flood())
    _record(f"flood t={SCALING_CLIQUES[1]}", "kernel", benchmark,
            fast_seconds, legacy_seconds, result.rounds, result.messages)


def test_observability_overhead(benchmark, once):
    """The repro.obs collector must stay off the engine hot path.

    With no collector installed the engine does one module-global
    ``is None`` check per run; with one installed (aggregates only, no
    round sampling) the per-run cost is a single ``record_run`` call.
    Both must be noise against the storm kernel.  Round sampling
    (``sample_rounds=True``) adds a per-round tracer append and is
    recorded for context only.
    """
    from repro.obs import observed

    network = hard_workload(SCALING_CLIQUES[1]).network
    kernel = lambda: network.run(BroadcastStorm(STORM_ROUNDS))  # noqa: E731

    def observed_run(sample_rounds):
        def run():
            with observed(sample_rounds=sample_rounds):
                return kernel()
        return run

    base_seconds, result = _best_time(kernel)
    plain_seconds, _ = _best_time(observed_run(sample_rounds=False))
    sampled_seconds, _ = _best_time(observed_run(sample_rounds=True))
    once(benchmark, kernel)
    overhead = plain_seconds / base_seconds - 1.0
    row = {
        "label": f"obs-overhead t={SCALING_CLIQUES[1]}",
        "kind": "observability",
        "rounds": result.rounds,
        "messages": result.messages,
        "base_seconds": round(base_seconds, 6),
        "collector_seconds": round(plain_seconds, 6),
        "sampled_seconds": round(sampled_seconds, 6),
        "collector_overhead_pct": round(100 * overhead, 3),
        "sampled_overhead_pct": round(
            100 * (sampled_seconds / base_seconds - 1.0), 3
        ),
    }
    if benchmark is not None:
        benchmark.extra_info.update(row)
    _ROWS.append(
        {**row, "fast_rounds_per_sec": round(result.rounds / plain_seconds, 2),
         "legacy_rounds_per_sec": round(result.rounds / base_seconds, 2),
         "fast_seconds": row["collector_seconds"],
         "legacy_seconds": row["base_seconds"],
         "speedup": round(base_seconds / plain_seconds, 3)}
    )
    # Acceptance bar: an installed (non-sampling) collector costs < 3%.
    assert overhead < 0.03, row


@pytest.mark.parametrize("num_cliques", SCALING_CLIQUES)
def test_pipeline_context(benchmark, once, num_cliques):
    """Full Theorem 2 run: engine + central phases (context numbers)."""
    instance = hard_workload(num_cliques)
    acd = workload_acd(num_cliques)
    params = bench_params()

    def fast_run():
        return delta_color_randomized(
            instance.network, params=params, acd=acd, seed=0
        )

    def legacy_run():
        with force_legacy_engine():
            return fast_run()

    fast_seconds, result = _best_time(fast_run)
    legacy_seconds, legacy_result = _best_time(legacy_run)
    assert legacy_result.colors == result.colors  # engines are bit-identical
    once(benchmark, fast_run)
    row = _record(f"pipeline t={num_cliques}", "pipeline", benchmark,
                  fast_seconds, legacy_seconds,
                  result.rounds, result.messages)
    assert row["speedup"] >= 1.1, row


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "kind", "rounds", "fast rounds/s", "legacy rounds/s",
         "speedup"],
        [
            [r["label"], r["kind"], r["rounds"], r["fast_rounds_per_sec"],
             r["legacy_rounds_per_sec"], f'{r["speedup"]:.2f}x']
            for r in _ROWS
        ],
        title="Engine microbench: rewritten engine vs seed engine",
    )
    save_artifact("engine_microbench", _ROWS)
