"""E10 — Substrate micro-benchmarks.

Round/message costs of every black-box substitute (DESIGN.md table) on
standard inputs, so that the pipeline numbers of E1/E7 can be traced to
their components.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import hard_workload, print_table, save_artifact
from repro.local import Network
from repro.subroutines import (
    Hypergraph,
    deg_plus_one_list_coloring,
    hyperedge_grabbing,
    iterated_split,
    linial_coloring,
    luby_mis,
    maximal_independent_set,
    maximal_matching,
    randomized_list_coloring,
)

_ROWS: list[dict] = []


def _record(label, n, result):
    _ROWS.append(
        {
            "label": label,
            "n": n,
            "rounds": result.rounds,
            "messages": result.messages,
        }
    )


def _random_regularish(n: int, degree: int, seed: int) -> Network:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n * degree // 2:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    uids = list(range(n))
    rng.shuffle(uids)
    return Network.from_edges(n, sorted(edges), uids)


@pytest.mark.parametrize("n", [500, 2000])
def test_linial(benchmark, once, n):
    net = _random_regularish(n, 12, 1)
    # A huge ID space forces genuine log*-many reduction rounds.
    net = Network(net.adjacency, [i * 10 ** 6 + 13 for i in range(n)])
    _, result = once(
        benchmark, linial_coloring, net, id_space=n * 10 ** 6 + 14
    )
    _record("linial O(Delta^2)-coloring", n, result)


@pytest.mark.parametrize("n", [500, 2000])
def test_deg_plus_one_deterministic(benchmark, once, n):
    net = _random_regularish(n, 12, 2)
    lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]
    _, result = once(benchmark, deg_plus_one_list_coloring, net, lists)
    _record("deg+1 list coloring (det)", n, result)


@pytest.mark.parametrize("n", [500, 2000])
def test_deg_plus_one_randomized(benchmark, once, n):
    net = _random_regularish(n, 12, 3)
    lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]
    _, result = once(
        benchmark, randomized_list_coloring, net, lists, seed=0
    )
    _record("deg+1 list coloring (rand)", n, result)


@pytest.mark.parametrize("n", [500, 2000])
def test_mis(benchmark, once, n):
    net = _random_regularish(n, 12, 4)
    _, det = once(benchmark, maximal_independent_set, net)
    _record("MIS (det sweep)", n, det)
    _, rand = luby_mis(net, seed=1)
    _record("MIS (Luby)", n, rand)


@pytest.mark.parametrize("n", [500, 1000])
def test_matching(benchmark, once, n):
    net = _random_regularish(n, 8, 5)
    _, result = once(benchmark, maximal_matching, net)
    _record("maximal matching (det)", n, result)


@pytest.mark.parametrize("num_cliques", [136, 272])
def test_heg_on_pipeline_hypergraph(benchmark, once, num_cliques):
    """HEG on ring-style hypergraphs sized like the pipeline's H."""
    n = num_cliques * 10
    edges = [(i, (i + 1) % n, (i + 2) % n) for i in range(n)]
    edges += [(i, (i + 7) % n) for i in range(n)]
    h = Hypergraph(n, edges)

    def run():
        return hyperedge_grabbing(h)

    _, result = once(benchmark, run)
    _record("HEG (proposals)", n, result)


@pytest.mark.parametrize("num_cliques", [136, 272])
def test_degree_splitting(benchmark, once, num_cliques):
    instance = hard_workload(num_cliques)
    owner = instance.clique_of()
    edges = [
        (owner[u], owner[v])
        for u, v in instance.network.edges()
        if owner[u] != owner[v]
    ]

    def run():
        return iterated_split(
            instance.num_cliques, edges, 2, epsilon=1.0 / 100.0
        )

    result = once(benchmark, run)
    _ROWS.append(
        {
            "label": "degree splitting (2 levels, eps'=1/100)",
            "n": len(edges),
            "rounds": result.rounds,
            "messages": 0,
        }
    )


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["subroutine", "input size", "rounds", "messages"],
        [[r["label"], r["n"], r["rounds"], r["messages"]] for r in _ROWS],
        title="E10: substrate round/message costs",
    )
    save_artifact("e10_subroutines", _ROWS)


@pytest.mark.parametrize("n", [400])
def test_list_coloring_strategy_comparison(benchmark, once, n):
    """Three (deg+1)-list coloring strategies on one high-diameter graph:
    the deterministic sweep (O(Delta^2)-ish), randomized trials
    (O(log n)), and the Linial-Saks decomposition route (O(log^2 n),
    Delta-independent) — the trade-off the paper's [MT20]/[GG24] black
    boxes refine."""
    from repro.subroutines.network_decomposition import (
        decomposition_list_coloring,
    )

    edges = [(i, (i + 1) % n) for i in range(n)]
    edges += [(i, (i + 9) % n) for i in range(n)]
    net = Network.from_edges(n, sorted(set(
        (min(a, b), max(a, b)) for a, b in edges
    )))
    lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]

    _, det = deg_plus_one_list_coloring(net, lists)
    _record("deg+1 strategy: deterministic sweep", n, det)
    _, rand = randomized_list_coloring(net, lists, seed=0)
    _record("deg+1 strategy: randomized trials", n, rand)

    def run():
        return decomposition_list_coloring(net, lists, seed=0)

    _, decomp = once(benchmark, run)
    _record("deg+1 strategy: LS decomposition", n, decomp)


@pytest.mark.parametrize("n", [1000])
def test_arboricity_toolbox(benchmark, once, n):
    """The Barenboim-Elkin route: H-partition, forest decomposition,
    Cole-Vishkin 3-coloring of one forest, and Kuhn defective coloring
    — the sparse-graph counterpart of the paper's dense toolbox."""
    from repro.subroutines import (
        cv_forest_coloring,
        defective_coloring,
        forest_decomposition,
    )

    net = _random_regularish(n, 12, 9)

    def run():
        return forest_decomposition(net, 4)

    forest_of, oriented, partition = once(benchmark, run)
    _ROWS.append(
        {
            "label": f"H-partition ({partition.num_classes} classes)",
            "n": n,
            "rounds": partition.rounds,
            "messages": 0,
        }
    )
    parent = [-1] * net.n
    edges = []
    for (tail, head), forest in zip(oriented, forest_of):
        if forest == 0:
            parent[tail] = head
            edges.append((tail, head))
    sub = Network.from_edges(net.n, edges, net.uids)
    _, cv = cv_forest_coloring(sub, parent)
    _record("Cole-Vishkin forest 3-coloring", n, cv)

    spread = Network(net.adjacency, [u * 10 ** 6 + 1 for u in net.uids])
    _, defective = defective_coloring(
        spread, 4, id_space=n * 10 ** 6 + 2
    )
    _record("defective coloring (d=4)", n, defective)
