"""E3b — The DCC barrier: loophole diameter vs round complexity.

Section 1.1 argues prior deterministic approaches are stuck because
their degree-choosable components have non-constant diameter and the
symmetry breaking between DCCs pays that diameter multiplicatively.
This experiment varies the *clique-graph girth* — girth-4 circulants
(shortest lifted loophole: 8 vertices) vs girth-6 projective planes
(12 vertices) — at matched n and Delta: the DCC baseline's rounds grow
with the loophole diameter and cross over our algorithm, whose
slack-triad machinery only ever touches constant-radius structures.
"""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.baselines import dcc_layering_coloring
from repro.bench import print_table, record_result, save_artifact
from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic
from repro.graphs import hard_clique_graph, projective_plane_clique_graph

PARAMS = AlgorithmParameters(epsilon=1.0 / 8.0)
Q = 13  # Delta = 14, 366 cliques, n = 5124

_ROWS: list[dict] = []


def _instances():
    girth6 = projective_plane_clique_graph(Q)
    girth4 = hard_clique_graph(girth6.num_cliques, Q + 1, seed=1)
    return {"girth-4 (circulant)": girth4, "girth-6 (PG(2,13))": girth6}


@pytest.mark.parametrize("family", sorted(_instances()))
@pytest.mark.parametrize("algorithm", ["ours (Thm 1)", "DCC baseline"])
def test_girth_barrier(benchmark, once, family, algorithm):
    instance = _instances()[family]
    acd = compute_acd(instance.network, epsilon=PARAMS.epsilon)
    if algorithm == "ours (Thm 1)":
        result = once(
            benchmark, delta_color_deterministic, instance.network,
            params=PARAMS, acd=acd,
        )
        dcc_size = "-"
    else:
        result = once(
            benchmark, dcc_layering_coloring, instance.network,
            params=PARAMS, acd=acd,
        )
        dcc_size = result.stats["max_dcc_size"]
    record_result(benchmark, result)
    _ROWS.append(
        {
            "family": family,
            "algorithm": algorithm,
            "n": instance.n,
            "delta": instance.delta,
            "dcc_size": dcc_size,
            "rounds": result.rounds,
        }
    )


def teardown_module(module):
    if not _ROWS:
        return
    rows = sorted(_ROWS, key=lambda r: (r["family"], r["algorithm"]))
    print_table(
        ["clique-graph family", "algorithm", "n", "Delta",
         "max DCC size", "rounds"],
        [
            [r["family"], r["algorithm"], r["n"], r["delta"],
             r["dcc_size"], r["rounds"]]
            for r in rows
        ],
        title="E3b: the DCC barrier — loophole diameter vs rounds",
    )
    save_artifact("e3b_girth", rows)
