"""E9 — Ablations of the paper's design choices.

Sweeps the knobs DESIGN.md calls out:

* sub-clique budget q (the paper's 28 vs smaller budgets) — fewer
  sub-cliques mean fewer outgoing F2 edges but identical correctness;
* degree-splitting accuracy epsilon' (paper: 1/100) — coarser splits
  need more repairs but cost fewer rounds;
* splitting disabled (iterations = 0) — incoming degrees blow up,
  demonstrating why Phase 2 exists (Lemma 13 -> Lemma 16);
* T-node activation probability — drives the shattering trade-off
  between pre-shattering success and component workload.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    hard_workload,
    print_table,
    record_result,
    save_artifact,
    workload_acd,
)
from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic, delta_color_randomized

NUM_CLIQUES = 136
EPS = 1.0 / 8.0

_ROWS: list[dict] = []


@pytest.mark.parametrize("subclique_budget", [2, 4, 10, 28])
def test_subclique_budget(benchmark, once, subclique_budget):
    instance = hard_workload(NUM_CLIQUES)
    acd = workload_acd(NUM_CLIQUES)
    params = AlgorithmParameters(
        epsilon=EPS, subclique_count=subclique_budget
    )
    result = once(
        benchmark, delta_color_deterministic, instance.network,
        params=params, acd=acd,
    )
    record_result(benchmark, result)
    _ROWS.append(
        {
            "label": f"q budget={subclique_budget}",
            "rounds": result.rounds,
            "q_eff": result.stats["phase1"]["subclique_count_effective"],
            "ratio": round(result.stats["phase1"]["heg_ratio"], 2),
            "detail": f"f2={result.stats['phase2']['f2_size']}",
        }
    )


@pytest.mark.parametrize("split_epsilon", [1.0 / 100.0, 1.0 / 20.0, 1.0 / 4.0])
def test_split_accuracy(benchmark, once, split_epsilon):
    instance = hard_workload(NUM_CLIQUES)
    acd = workload_acd(NUM_CLIQUES)
    params = AlgorithmParameters(epsilon=EPS, split_epsilon=split_epsilon)
    result = once(
        benchmark, delta_color_deterministic, instance.network,
        params=params, acd=acd,
    )
    record_result(benchmark, result)
    phase2 = result.stats["phase2"]
    _ROWS.append(
        {
            "label": f"split eps'={split_epsilon:.3f}",
            "rounds": result.rounds,
            "q_eff": result.stats["phase1"]["subclique_count_effective"],
            "ratio": round(result.stats["phase1"]["heg_ratio"], 2),
            "detail": (
                f"split_rounds={phase2['split_rounds']} "
                f"repairs={phase2['repairs']} "
                f"worst_in={phase2['worst_incoming']}"
            ),
        }
    )


def test_splitting_disabled(benchmark, once):
    """iterations=0 keeps all of F2 before trimming: incoming degrees at
    the head cliques stay high until the final trim, showing the load
    Phase 2 removes."""
    instance = hard_workload(NUM_CLIQUES)
    acd = workload_acd(NUM_CLIQUES)
    params = AlgorithmParameters(epsilon=EPS, split_iterations=0)
    result = once(
        benchmark, delta_color_deterministic, instance.network,
        params=params, acd=acd,
    )
    record_result(benchmark, result)
    phase2 = result.stats["phase2"]
    _ROWS.append(
        {
            "label": "splitting disabled",
            "rounds": result.rounds,
            "q_eff": result.stats["phase1"]["subclique_count_effective"],
            "ratio": round(result.stats["phase1"]["heg_ratio"], 2),
            "detail": (
                f"trimmed={phase2['trimmed']} "
                f"worst_in={phase2['worst_incoming']} "
                f"gv_deg={result.stats['phase4a']['gv_max_degree']}"
            ),
        }
    )


@pytest.mark.parametrize("activation", [0.05, 1.0 / 3.0, 0.8])
def test_activation_probability(benchmark, once, activation):
    instance = hard_workload(NUM_CLIQUES)
    acd = workload_acd(NUM_CLIQUES)
    result = once(
        benchmark, delta_color_randomized, instance.network,
        params=AlgorithmParameters(epsilon=EPS), acd=acd, seed=1,
        activation_probability=activation,
    )
    record_result(benchmark, result)
    shattering = result.stats["shattering"]
    _ROWS.append(
        {
            "label": f"rand p={activation:.2f}",
            "rounds": result.rounds,
            "q_eff": "-",
            "ratio": "-",
            "detail": (
                f"t-nodes={shattering['good']} "
                f"bad={shattering['bad_cliques']} "
                f"maxcomp={shattering['max_component']}"
            ),
        }
    )


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["ablation", "rounds", "q_eff", "delta_H/r_H", "detail"],
        [
            [r["label"], r["rounds"], r["q_eff"], r["ratio"], r["detail"]]
            for r in _ROWS
        ],
        title="E9: ablations",
    )
    save_artifact("e9_ablations", _ROWS)
