"""E8 — Lemma 20 / Algorithm 3: the easy-clique and loophole phase.

Measures, on instances with growing easy fractions: loophole counts,
ruling-set sizes, BFS layer depth (the paper fixes 25 layers; our
unbounded layering should stay far below), and the phase's rounds.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    bench_params,
    mixed_workload,
    print_table,
    record_result,
    save_artifact,
    workload_acd,
)
from repro.constants import PAPER_BFS_DEPTH
from repro.core import delta_color_deterministic

_ROWS: list[dict] = []


@pytest.mark.parametrize("easy_fraction", [0.1, 0.25, 0.5, 1.0])
def test_easy_phase(benchmark, once, easy_fraction):
    num_cliques = 136
    instance = mixed_workload(num_cliques, easy_fraction=easy_fraction)
    acd = workload_acd(num_cliques, easy_fraction=easy_fraction)
    result = once(
        benchmark,
        delta_color_deterministic,
        instance.network,
        params=bench_params(),
        acd=acd,
    )
    record_result(benchmark, result)
    easy = result.stats["easy_phase"]
    row = {
        "label": f"easy={easy_fraction:.0%}",
        "loopholes": easy["loopholes"],
        "selected": easy["selected"],
        "layers": easy["layers"],
        "paper_depth": PAPER_BFS_DEPTH,
        "easy_rounds": result.ledger.rounds_for("easy"),
        "total_rounds": result.rounds,
    }
    _ROWS.append(row)
    assert easy["layers"] <= PAPER_BFS_DEPTH


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["case", "loopholes", "ruling set", "BFS layers",
         "paper's layer budget", "easy rounds", "total rounds"],
        [
            [r["label"], r["loopholes"], r["selected"], r["layers"],
             r["paper_depth"], r["easy_rounds"], r["total_rounds"]]
            for r in _ROWS
        ],
        title="E8 / Lemma 20: easy-clique phase",
    )
    save_artifact("e8_easy_phase", _ROWS)
