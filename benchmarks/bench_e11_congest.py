"""E11 — CONGEST compatibility of the substrates.

The paper works in LOCAL (unbounded messages) and cites CONGEST
Delta-coloring as related work ([MU21], [HM24]).  This experiment
measures the *actual bandwidth* of our subroutine implementations —
maximum message size in O(log n)-bit words — showing which of them
already fit CONGEST (O(1) words) and which rely on LOCAL's freedom.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import print_table, save_artifact
from repro.local import Network
from repro.subroutines.deg_list_coloring import _RandomTrialColoring
from repro.subroutines.heg import Hypergraph, _ProposalHEG, _incidence_network
from repro.subroutines.linial import LinialColoring
from repro.subroutines.mis import _LubyMIS

_ROWS: list[dict] = []


def _random_network(
    n: int, m: int, seed: int, *, spread_uids: bool = False
) -> Network:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    # A huge ID space forces Linial to do genuine reduction rounds.
    uids = [i * 10 ** 6 + 17 for i in range(n)] if spread_uids else None
    return Network.from_edges(n, sorted(edges), uids)


CASES = {
    "linial-coloring": lambda: (
        _random_network(400, 1200, 1, spread_uids=True),
        lambda net: LinialColoring(max(net.uids) + 1, net.max_degree),
    ),
    "luby-mis": lambda: (
        _random_network(400, 1200, 2),
        lambda net: _LubyMIS(random.Random(0)),
    ),
    "random-trial-coloring": lambda: (
        _random_network(400, 1200, 3),
        lambda net: _RandomTrialColoring(
            [list(range(net.degree(v) + 1)) for v in range(net.n)],
            random.Random(0),
        ),
    ),
    "heg-proposals": lambda: _heg_case(),
}


def _heg_case():
    n = 300
    edges = [(i, (i + 1) % n, (i + 2) % n) for i in range(n)]
    edges += [(i, (i + 7) % n) for i in range(n)]
    h = Hypergraph(n, edges)
    return _incidence_network(h), lambda net: _ProposalHEG(n, None)


@pytest.mark.parametrize("case", sorted(CASES))
def test_congest_bandwidth(benchmark, once, case):
    network, make = CASES[case]()
    algorithm = make(network)

    def run():
        return network.run(algorithm, measure_bandwidth=True)

    result = once(benchmark, run)
    benchmark.extra_info["max_message_words"] = result.max_message_words
    _ROWS.append(
        {
            "label": case,
            "rounds": result.rounds,
            "messages": result.messages,
            "max_words": result.max_message_words,
            "congest": "yes" if result.max_message_words <= 4 else "no",
        }
    )
    # Every substrate we implement happens to be bandwidth-light: the
    # LOCAL freedom is only used in gather-based O(1) steps.
    assert result.max_message_words <= 4


def teardown_module(module):
    if not _ROWS:
        return
    print_table(
        ["subroutine", "rounds", "messages", "max message (words)",
         "CONGEST-compatible"],
        [
            [r["label"], r["rounds"], r["messages"], r["max_words"],
             r["congest"]]
            for r in _ROWS
        ],
        title="E11: message bandwidth of the substrates",
    )
    save_artifact("e11_congest", _ROWS)
