# Convenience targets for the repro repository.

.PHONY: install test test-all bench chaos columnar-parity trace serve-smoke chaos-serve fleet-smoke dist-smoke report examples ci lint lint-repro typecheck clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/ -m "not slow"

test-all:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Chaos hardening: engine fault injection + campaign-runner resilience.
chaos:
	PYTHONPATH=src python -m pytest tests/test_faults_chaos.py tests/test_runner_resilience.py -q

# Bit-identical parity gate with the columnar backend forced on: every
# Network.run in the parity + chaos suites dispatches to
# repro.local.columnar, so drops/crashes/budgets and Tracer sampling are
# exercised through the bucketed delivery path.
columnar-parity:
	REPRO_FORCE_COLUMNAR=1 PYTHONPATH=src python -m pytest tests/test_engine_parity.py tests/test_faults_chaos.py -q

# Observability smoke: trace a small instance, validate the JSON
# telemetry against the checked-in schema + consistency invariants.
trace:
	PYTHONPATH=src python scripts/check_telemetry.py

# Serving smoke: boot `repro serve` as a subprocess and assert the
# end-to-end contract (byte-match vs direct call, cache hit, load
# shedding, SIGTERM drain).  Bounded: a hung server must fail, not stall.
serve-smoke:
	PYTHONPATH=src timeout 300 python scripts/serve_smoke.py

# Chaos serving smoke: `repro serve` behind a seeded `repro chaosproxy`,
# driven through the resilient client.  Asserts 100% completion with
# byte-identical responses vs the fault-free run (DESIGN.md section 13).
chaos-serve:
	PYTHONPATH=src timeout 300 python scripts/chaos_serve_smoke.py

# Fleet smoke: 2-shard `repro fleet` behind the consistent-hash router,
# byte-identical to a single-server baseline, one shard SIGKILLed
# mid-run (re-route + supervisor restart), SIGTERM cascade drain
# (DESIGN.md section 14).
fleet-smoke:
	PYTHONPATH=src timeout 300 python scripts/fleet_smoke.py

# Distributed campaign smoke: run_campaign(executor="remote") against a
# live 2-shard serve fleet — byte-identical to the inline executor, and
# 100% cell completion with one shard SIGKILLed mid-campaign
# (DESIGN.md section 15).
dist-smoke:
	PYTHONPATH=src timeout 300 python scripts/dist_smoke.py

# Mirrors .github/workflows/ci.yml: tier-1 suite + smokes + lint.
ci:
	PYTHONPATH=src python -m pytest -x -q
	$(MAKE) columnar-parity
	$(MAKE) trace
	$(MAKE) serve-smoke
	$(MAKE) chaos-serve
	$(MAKE) fleet-smoke
	$(MAKE) dist-smoke
	$(MAKE) lint
	$(MAKE) lint-repro
	$(MAKE) typecheck

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# The repo's own static analyzer: LOCAL-model locality, determinism,
# ledger accounting (see DESIGN.md section 9).  Always available — it is
# part of the package and needs no third-party tools.
lint-repro:
	PYTHONPATH=src python -m repro.cli lint src
	PYTHONPATH=src python -m repro.cli lint benchmarks scripts --baseline lint-baseline-tools.json

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/types.py src/repro/constants.py src/repro/errors.py \
			src/repro/obs src/repro/serve/protocol.py \
			src/repro/serve/cache.py src/repro/runner/remote.py \
			src/repro/lint; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; \
	fi

report: 
	python scripts/build_report.py

examples:
	python examples/quickstart.py
	python examples/anatomy_of_a_run.py
	python examples/custom_graph.py
	python examples/sparse_extension.py
	python examples/complexity_landscape.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
