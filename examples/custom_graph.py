"""Coloring your own graph: API round-trip, error handling, fallbacks.

A downstream user brings an arbitrary graph — maybe from networkx,
maybe from an edge list.  Dense graphs get the paper's Delta-coloring;
graphs with sparse vertices raise NotDenseError (Theorems 1-2 only
cover dense graphs), for which the honest fallback is (Delta+1)-greedy;
and graphs with a (Delta+1)-clique are not Delta-colorable at all.

Run:  python examples/custom_graph.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    GraphStructureError,
    Network,
    NotDenseError,
    delta_color,
    generators,
    verify_coloring,
)
from repro.baselines import greedy_delta_plus_one


def color_anything(network: Network, label: str) -> None:
    print(f"\n--- {label} (n={network.n}, Delta={network.max_degree}) ---")
    try:
        result = delta_color(network, epsilon=0.25)
    except NotDenseError as error:
        print(f"not dense: {error}")
        result = greedy_delta_plus_one(network, deterministic=False, seed=0)
        print(f"fell back to (Delta+1) = {result.num_colors} colors "
              f"in {result.rounds} rounds")
        return
    except GraphStructureError as error:
        print(f"not Delta-colorable: {error}")
        return
    verify_coloring(network, result.colors, result.num_colors)
    print(f"Delta-colored with {result.num_colors} colors "
          f"in {result.rounds} rounds via {result.algorithm}")


def main() -> None:
    # 1. A dense instance imported through networkx.
    instance = generators.hard_clique_graph(num_cliques=34, delta=16, seed=2)
    graph = nx.Graph(instance.network.edges())
    color_anything(Network.from_networkx(graph), "networkx import (dense)")

    # 2. A raw edge list that is NOT dense (random graph): fallback path.
    random_graph = nx.gnm_random_graph(120, 360, seed=4)
    color_anything(
        Network.from_networkx(random_graph), "random graph (sparse)"
    )

    # 3. A graph containing a (Delta+1)-clique: Brooks says impossible.
    blocked = nx.complete_graph(6)
    color_anything(Network.from_networkx(blocked), "K6 (Brooks obstruction)")


if __name__ == "__main__":
    main()
