"""Anatomy of a run: every phase of Algorithm 2, step by step.

Walks the deterministic pipeline manually — ACD, hard/easy
classification, balanced matching (F1 -> H -> F2), sparsification (F3),
slack triads, slack-pair coloring — printing the quantity each lemma
bounds next to its measured value.  This is the programmatic companion
to the paper's Figures 2-4.

Run:  python examples/anatomy_of_a_run.py
"""

from __future__ import annotations

from repro import AlgorithmParameters, RoundLedger, compute_acd, generators
from repro.core import (
    build_pair_conflict_graph,
    classify_cliques,
    color_slack_pairs,
    compute_balanced_matching,
    form_slack_triads,
    sparsify_matching,
)
from repro.core.sparsify_phase import incoming_bound
from repro.verify import check_lemma12, check_lemma13, check_lemma15, check_lemma16


def main() -> None:
    params = AlgorithmParameters(epsilon=0.25)
    instance = generators.hard_clique_graph(num_cliques=34, delta=16, seed=0)
    network = instance.network
    delta = instance.delta
    print(f"instance: {instance.describe()}\n")

    acd = compute_acd(network, epsilon=params.epsilon)
    print(f"[Lemma 2]   ACD: {acd.num_cliques} almost-cliques, "
          f"{len(acd.sparse)} sparse vertices (dense={acd.is_dense})")

    classification = classify_cliques(network, acd)
    print(f"[Def. 8]    classification: {len(classification.hard)} hard, "
          f"{len(classification.easy)} easy")

    ledger = RoundLedger()
    balanced = compute_balanced_matching(
        network, classification, params=params, ledger=ledger
    )
    stats = balanced.stats
    print(f"[Lemma 10]  proposals per sub-clique all distinct (verified)")
    print(f"[Lemma 11]  delta_H = {stats['min_degree_H']}, "
          f"r_H = {stats['rank_H']}, ratio = {stats['heg_ratio']:.2f} "
          f"(> 1.1: {stats['lemma11_satisfied']})")
    check_lemma12(network, classification, balanced)
    print(f"[Lemma 12]  F1: {len(balanced.f1)} edges -> F2: "
          f"{len(balanced.edges)} oriented edges, "
          f"{stats['subclique_count_effective']} outgoing per Type-I clique")

    sparsified = sparsify_matching(
        network, classification, balanced, params=params, ledger=ledger
    )
    check_lemma13(network, classification, sparsified, params=params,
                  strict_incoming=False)
    print(f"[Lemma 13]  F3: {len(sparsified.edges)} edges, exactly "
          f"{params.outgoing_kept} outgoing per clique, worst incoming "
          f"{sparsified.stats['worst_incoming']} "
          f"(bound {incoming_bound(delta, params.epsilon):.1f})")

    triads, triad_stats = form_slack_triads(
        network, classification, sparsified, params=params, ledger=ledger
    )
    check_lemma15(network, classification, triads)
    example = triads[0]
    print(f"[Lemma 15]  {len(triads)} vertex-disjoint slack triads; e.g. "
          f"clique {example.clique}: slack vertex {example.slack}, "
          f"pair {example.pair} (Figure 2)")

    virtual = build_pair_conflict_graph(network, triads)
    measured = check_lemma16(network, triads, delta)
    print(f"[Lemma 16]  G_V: {virtual.n} pairs, max degree {measured} "
          f"<= Delta - 2 = {delta - 2} (Figure 3)")

    palette = list(range(delta))
    assignment, _ = color_slack_pairs(network, triads, palette, ledger=ledger)
    w, v = triads[0].pair
    print(f"[Sec. 3.6]  pairs same-colored, e.g. color({w}) = "
          f"color({v}) = {assignment[w]} -> slack vertex "
          f"{triads[0].slack} gained one unit of permanent slack")

    print(f"\nrounds so far (Lemma 18 terms): {ledger.breakdown()}")


if __name__ == "__main__":
    main()
