"""The open problem, prototyped: Delta-coloring with sparse vertices.

The paper's Theorems 1/2 require *dense* graphs; its Section 1.1 leaves
the sparse part as the open extension while observing that sparse
vertices are easy for randomized algorithms — two same-colored
non-adjacent neighbors give permanent slack.  This example builds a
graph that is mostly hard cliques plus a Delta-regular sparse blob,
shows that `delta_color` (Theorems 1/2) correctly refuses it, and then
colors it with the `general` method: sparse slack placement first, the
Theorem 2 machinery on the dense part, sparse vertices last.

Run:  python examples/sparse_extension.py
"""

from __future__ import annotations

from repro import NotDenseError, delta_color, generators, verify_coloring


def main() -> None:
    instance = generators.sparse_dense_mix(
        num_cliques=34, delta=16, blob_size=64, attachments=4, seed=1
    )
    blob = instance.meta["blob_vertices"]
    print(f"instance: {instance.describe()} + {len(blob)} sparse blob "
          "vertices (all at full degree Delta)")

    try:
        delta_color(instance.network, method="randomized", epsilon=0.25,
                    seed=0)
    except NotDenseError as error:
        print(f"\nTheorem 2 path refuses, as it must: {error}")

    result = delta_color(
        instance.network, method="general", epsilon=0.25, seed=0
    )
    verify_coloring(instance.network, result.colors, result.num_colors)
    slack = result.stats["sparse_slack"]
    print(f"\n'general' method: proper {result.num_colors}-coloring in "
          f"{result.rounds} LOCAL rounds")
    print(f"  sparse vertices:          {result.stats['sparse_vertices']}")
    print(f"  initially deficient:      {slack.initially_deficient} "
          "(degree-Delta sparse vertices need one duplicated neighbor color)")
    print(f"  slack pairs same-colored: {slack.pairs_placed} "
          f"in {slack.iterations} placement iterations")
    print(f"  sparse colored early:     {slack.colored_early}, the rest "
          "finish after the dense part with guaranteed slack")


if __name__ == "__main__":
    main()
