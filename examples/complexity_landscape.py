"""The Figure 1 scenario: where does Delta-coloring sit?

The paper motivates Delta-coloring as the natural problem strictly
between the greedy regime ((Delta+1)-coloring, Theta(log* n)) and the
global regime.  This example runs every algorithm in the repository on
one dense hard instance and prints the measured landscape: greedy far
below, the paper's deterministic algorithm beating the DCC baseline,
and the randomized algorithms exponentially below the deterministic
ones.

Run:  python examples/complexity_landscape.py
"""

from __future__ import annotations

from repro import AlgorithmParameters, compute_acd, generators
from repro.baselines import (
    dcc_layering_coloring,
    ghkm_randomized_coloring,
    greedy_delta_plus_one,
)
from repro.bench import print_table
from repro.core import delta_color_deterministic, delta_color_randomized


def main() -> None:
    params = AlgorithmParameters(epsilon=1.0 / 8.0)
    instance = generators.hard_clique_graph(num_cliques=68, delta=32, seed=1)
    acd = compute_acd(instance.network, epsilon=params.epsilon)
    print(f"instance: {instance.describe()}")

    runs = [
        ("(Delta+1) greedy, randomized",
         greedy_delta_plus_one(instance.network, deterministic=False, seed=0)),
        ("(Delta+1) greedy, deterministic",
         greedy_delta_plus_one(instance.network)),
        ("Delta-coloring, ours randomized (Thm 2)",
         delta_color_randomized(instance.network, params=params, acd=acd,
                                seed=0)),
        ("Delta-coloring, GHKM-style baseline",
         ghkm_randomized_coloring(instance.network, params=params, acd=acd,
                                  seed=0)),
        ("Delta-coloring, ours deterministic (Thm 1)",
         delta_color_deterministic(instance.network, params=params, acd=acd)),
        ("Delta-coloring, DCC baseline",
         dcc_layering_coloring(instance.network, params=params, acd=acd)),
    ]
    rows = [
        [label, result.num_colors, result.rounds, result.messages]
        for label, result in sorted(runs, key=lambda x: x[1].rounds)
    ]
    print_table(
        ["algorithm", "colors", "LOCAL rounds", "messages"],
        rows,
        title="Measured complexity landscape (cf. Figure 1)",
    )
    print("Reading: one color fewer costs substantially more rounds in "
          "both regimes, and randomization buys an order of magnitude — "
          "the structure of the paper's Figure 1.  (At fixed laptop-scale "
          "n the DCC baseline's totals can beat Theorem 1's: the paper's "
          "deterministic advantage is asymptotic in n; see EXPERIMENTS.md "
          "E3/E3b.)")


if __name__ == "__main__":
    main()
