"""Quickstart: Delta-color a dense graph and inspect the cost.

Generates the canonical hard instance (disjoint Delta-cliques wired by
a matching, Figure 2 of the paper), runs both Theorem 1 (deterministic)
and Theorem 2 (randomized), verifies the colorings, and prints the
LOCAL round breakdown.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import delta_color, generators, verify_coloring


def main() -> None:
    # 34 hard cliques of size 16 -> n = 544 vertices, Delta = 16.
    # (The paper's epsilon = 1/63 needs Delta >= 63; epsilon = 1/4 keeps
    # the demo small while preserving every structural guarantee.)
    instance = generators.hard_clique_graph(num_cliques=34, delta=16)
    print(f"instance: {instance.describe()}")

    for method in ("deterministic", "randomized"):
        result = delta_color(
            instance.network, method=method, epsilon=0.25, seed=0
        )
        verify_coloring(instance.network, result.colors, result.num_colors)
        print(f"\n{method}: proper {result.num_colors}-coloring "
              f"in {result.rounds} LOCAL rounds "
              f"({result.messages} messages)")
        for phase, rounds in sorted(result.phase_rounds().items()):
            print(f"  {phase:<14} {rounds:>6} rounds")

    print("\nBoth colorings verified: every vertex colored with Delta "
          "colors, no monochromatic edge.")


if __name__ == "__main__":
    main()
