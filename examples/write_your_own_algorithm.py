"""Using the simulator as a library: write and cost your own algorithm.

The LOCAL engine underneath the Delta-coloring stack is general: this
example implements a classic textbook algorithm — synchronous leader
election by minimum-uid flooding — from scratch, runs it, and inspects
rounds, messages, bandwidth (CONGEST accounting), and the per-round
activity trace.

Run:  python examples/write_your_own_algorithm.py
"""

from __future__ import annotations

from repro import Network, generators
from repro.local import DistributedAlgorithm, Tracer


class MinUidLeaderElection(DistributedAlgorithm):
    """Every node learns the minimum uid in its component.

    Each node floods the smallest uid it has seen; quiescence implies
    agreement.  Termination detection is the textbook simplification:
    nodes know the graph diameter bound and set an alarm for it.
    """

    name = "leader-election"

    def __init__(self, diameter_bound: int):
        self.diameter_bound = diameter_bound

    def on_start(self, node, api):
        node.state["best"] = node.uid
        api.broadcast(node.uid)
        api.set_alarm(self.diameter_bound + 1)

    def on_round(self, node, api, inbox):
        best = node.state["best"]
        improved = False
        for _, uid in inbox:
            if uid < best:
                best = uid
                improved = True
        node.state["best"] = best
        if improved:
            api.broadcast(best)
        if api.round > self.diameter_bound:
            api.halt(best)
        else:
            api.set_alarm(api.round + 1)


def main() -> None:
    instance = generators.hard_clique_graph(num_cliques=34, delta=16, seed=4)
    network = instance.network

    tracer = Tracer()
    result = network.run(
        MinUidLeaderElection(diameter_bound=12),
        measure_bandwidth=True,
        tracer=tracer,
    )
    leaders = set(result.outputs)
    print(f"n = {network.n}, every node agreed on leader uid "
          f"{leaders} (consensus: {len(leaders) == 1})")
    print(f"rounds: {result.rounds}, messages: {result.messages}")
    print(f"bandwidth: max message {result.max_message_words} word(s) "
          "-> CONGEST-compatible")
    print(f"activity: executed {tracer.executed_rounds} busy rounds, "
          f"peak {tracer.peak_scheduled} nodes in one round, "
          f"{tracer.quiet_fraction(result.rounds):.0%} quiet")

    # The engine enforces the model: sending to a non-neighbor raises,
    # message timing is synchronous, and a CONGEST limit can be imposed:
    limited = network.run(
        MinUidLeaderElection(diameter_bound=12), bandwidth_limit=1
    )
    print(f"re-run under CONGEST(1 word) succeeded in {limited.rounds} rounds")


if __name__ == "__main__":
    main()
