"""Tests for the LOCAL simulator engine."""

from __future__ import annotations

import pytest

from repro.errors import RoundLimitExceeded, SimulationError
from repro.local import DistributedAlgorithm, Network


class Flood(DistributedAlgorithm):
    """Min-distance flood from the uid-0 node."""

    name = "flood"

    def on_start(self, node, api):
        if node.uid == 0:
            node.state["dist"] = 0
            api.broadcast(0)
            api.halt(0)

    def on_round(self, node, api, inbox):
        if "dist" in node.state:
            return
        dist = min(message for _, message in inbox) + 1
        node.state["dist"] = dist
        api.broadcast(dist)
        api.halt(dist)


class Silent(DistributedAlgorithm):
    name = "silent"

    def on_round(self, node, api, inbox):  # pragma: no cover
        raise AssertionError("silent algorithm must never be scheduled")


class AlarmClock(DistributedAlgorithm):
    name = "alarm"

    def __init__(self, when):
        self.when = when

    def on_start(self, node, api):
        api.set_alarm(self.when[node.index])

    def on_round(self, node, api, inbox):
        api.halt(api.round)


def path_network(n: int) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestEngine:
    def test_flood_rounds_equal_eccentricity(self):
        net = path_network(6)
        result = net.run(Flood())
        assert result.outputs == [0, 1, 2, 3, 4, 5]
        assert result.rounds == 5

    def test_flood_messages_counted(self):
        net = path_network(3)
        result = net.run(Flood())
        assert result.messages > 0

    def test_silent_network_terminates_immediately(self):
        net = path_network(4)
        result = net.run(Silent())
        assert result.rounds == 0
        assert result.outputs == [None] * 4

    def test_alarm_fast_forward(self):
        net = path_network(3)
        result = net.run(AlarmClock([100, 200, 300]))
        assert result.outputs == [100, 200, 300]
        assert result.rounds == 300

    def test_round_limit_enforced(self):
        class Forever(DistributedAlgorithm):
            name = "forever"

            def on_start(self, node, api):
                api.set_alarm(1)

            def on_round(self, node, api, inbox):
                api.set_alarm(api.round + 1)

        net = path_network(2)
        with pytest.raises(RoundLimitExceeded):
            net.run(Forever(), max_rounds=50)

    def test_send_to_non_neighbor_rejected(self):
        class Bad(DistributedAlgorithm):
            name = "bad"

            def on_start(self, node, api):
                if node.index == 0:
                    api.send(2, "hi")

            def on_round(self, node, api, inbox):  # pragma: no cover
                pass

        net = path_network(3)
        with pytest.raises(SimulationError, match="non-neighbor"):
            net.run(Bad())

    def test_messages_to_halted_nodes_are_dropped(self):
        class PingHalted(DistributedAlgorithm):
            name = "ping-halted"

            def on_start(self, node, api):
                if node.index == 0:
                    api.halt("done")
                else:
                    api.send(0, "ping")
                    api.halt("sent")

            def on_round(self, node, api, inbox):  # pragma: no cover
                raise AssertionError("halted node scheduled")

        net = path_network(2)
        result = net.run(PingHalted())
        assert result.rounds == 0
        assert result.all_halted

    def test_state_reset_between_runs(self):
        net = path_network(4)
        first = net.run(Flood())
        second = net.run(Flood())
        assert first.outputs == second.outputs


class TestConstruction:
    def test_duplicate_uids_rejected(self):
        with pytest.raises(SimulationError, match="unique"):
            Network([[1], [0]], uids=[5, 5])

    def test_self_loop_rejected(self):
        with pytest.raises(SimulationError, match="self loop"):
            Network.from_edges(2, [(0, 0)])

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(SimulationError, match="asymmetric"):
            Network([[1], []])

    def test_parallel_edges_deduplicated(self):
        net = Network.from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert net.edge_count == 1

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        graph = nx.cycle_graph(5)
        net = Network.from_networkx(graph)
        assert net.n == 5
        assert net.edge_count == 5
        assert net.max_degree == 2

    def test_edges_are_canonical(self):
        net = path_network(4)
        assert net.edges() == [(0, 1), (1, 2), (2, 3)]

    def test_degree_and_neighbor_set(self):
        net = path_network(3)
        assert net.degree(1) == 2
        assert net.neighbor_set(1) == frozenset({0, 2})

    def test_adjacency_is_immutable_after_construction(self):
        """Mutating adjacency would silently desync the lazy caches
        (``max_degree``, ``edge_count``, ``edges()``, neighbor sets) and
        any engine-side snapshots — before rows were frozen, appending a
        neighbor after first cached access left ``max_degree`` stale and
        ``edges()`` missing the new edge.  Now the mutation itself fails."""
        net = path_network(3)
        assert net.max_degree == 2          # populate the lazy caches
        assert net.edge_count == 2
        with pytest.raises(AttributeError):
            net.adjacency[0].append(2)      # type: ignore[attr-defined]
        with pytest.raises(TypeError):
            net.adjacency[0] = (1, 2)       # type: ignore[index]
        # The caches still answer from the unchanged topology.
        assert net.max_degree == 2
        assert net.edge_count == 2
        assert net.edges() == [(0, 1), (1, 2)]
        assert net.neighbor_set(0) == frozenset({1})


class TestSubnetwork:
    def test_induced_structure(self):
        net = Network.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        sub, mapping = net.subnetwork([0, 1, 2])
        assert mapping == [0, 1, 2]
        assert sub.edges() == [(0, 1), (1, 2)]

    def test_uids_inherited(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)], uids=[10, 11, 12, 13])
        sub, mapping = net.subnetwork([2, 3])
        assert sub.uids == [12, 13]

    def test_empty_subnetwork(self):
        net = path_network(3)
        sub, mapping = net.subnetwork([])
        assert sub.n == 0 and mapping == []


class TestBandwidthAccounting:
    def test_message_words_scalars(self):
        from repro.local import message_words

        assert message_words(7) == 1
        assert message_words(None) == 1
        assert message_words(3.5) == 1

    def test_message_words_containers(self):
        from repro.local import message_words

        assert message_words((1, 2, 3)) == 3
        assert message_words({"a": 1}) == 2
        assert message_words(("x", (1, 2))) == 3

    def test_flood_is_congest_friendly(self):
        net = path_network(5)
        result = net.run(Flood(), measure_bandwidth=True)
        assert result.max_message_words == 1
        assert result.total_message_words == result.messages

    def test_bandwidth_off_by_default(self):
        net = path_network(4)
        result = net.run(Flood())
        assert result.max_message_words == 0

    def test_bandwidth_limit_enforced(self):
        class Fat(DistributedAlgorithm):
            name = "fat"

            def on_start(self, node, api):
                if node.index == 0:
                    api.send(1, tuple(range(100)))

            def on_round(self, node, api, inbox):  # pragma: no cover
                pass

        net = path_network(2)
        with pytest.raises(SimulationError, match="CONGEST"):
            net.run(Fat(), bandwidth_limit=4)

    def test_bandwidth_limit_allows_small_messages(self):
        net = path_network(5)
        result = net.run(Flood(), bandwidth_limit=2)
        assert result.outputs == [0, 1, 2, 3, 4]
