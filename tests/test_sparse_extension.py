"""Tests for the sparse-vertex extension (the paper's open direction)."""

from __future__ import annotations

import random

import pytest

from repro import delta_color, verify_coloring
from repro.acd import compute_acd
from repro.constants import AlgorithmParameters
from repro.core import classify_cliques, delta_color_general, generate_sparse_slack
from repro.core.sparse import _deficit
from repro.errors import GraphStructureError
from repro.graphs import check_instance, hard_clique_graph, sparse_dense_mix
from repro.local import RoundLedger

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def mix_instance():
    return sparse_dense_mix(34, 16, seed=1)


@pytest.fixture(scope="module")
def mix_acd(mix_instance):
    return compute_acd(mix_instance.network, epsilon=0.25)


class TestGenerator:
    def test_degrees_exactly_delta(self, mix_instance):
        net = mix_instance.network
        assert all(net.degree(v) == 16 for v in range(net.n))

    def test_blob_is_sparse_cliques_are_dense(self, mix_instance, mix_acd):
        assert set(mix_acd.sparse) == set(mix_instance.meta["blob_vertices"])
        assert mix_acd.num_cliques == 34

    def test_all_cliques_stay_hard(self, mix_instance, mix_acd):
        classification = classify_cliques(mix_instance.network, mix_acd)
        assert len(classification.hard) == 34

    def test_planted_structure_valid(self, mix_instance):
        # Cliques unchanged; only the sparse blob was added.
        saved = mix_instance.meta
        assert saved["attachments"] == 4
        check_instance(mix_instance, expect_regular=True, expect_cover=False)

    def test_odd_attachments_rejected(self):
        with pytest.raises(GraphStructureError, match="even"):
            sparse_dense_mix(34, 16, attachments=3)

    def test_reproducible(self):
        a = sparse_dense_mix(34, 16, seed=9)
        b = sparse_dense_mix(34, 16, seed=9)
        assert a.network.edges() == b.network.edges()


class TestSlackPlacement:
    def test_all_deficits_resolved(self, mix_instance, mix_acd):
        colors: list[int | None] = [None] * mix_instance.n
        classification = classify_cliques(mix_instance.network, mix_acd)
        stats = generate_sparse_slack(
            mix_instance.network, mix_acd, colors, list(range(16)),
            rng=random.Random(0),
            hard_vertices=classification.hard_vertices(),
            ledger=RoundLedger(),
        )
        assert stats.pairs_placed > 0
        for v in mix_acd.sparse:
            if colors[v] is None:
                assert _deficit(mix_instance.network, v, colors, 16) <= 0

    def test_placed_colors_are_proper(self, mix_instance, mix_acd):
        colors: list[int | None] = [None] * mix_instance.n
        classification = classify_cliques(mix_instance.network, mix_acd)
        generate_sparse_slack(
            mix_instance.network, mix_acd, colors, list(range(16)),
            rng=random.Random(1),
            hard_vertices=classification.hard_vertices(),
        )
        net = mix_instance.network
        for u, v in net.edges():
            if colors[u] is not None:
                assert colors[u] != colors[v]

    def test_eligibility_protects_hard_neighbors(self, mix_instance, mix_acd):
        """Sparse vertices adjacent to hard cliques stay uncolored so the
        dense phases keep their slack sources."""
        colors: list[int | None] = [None] * mix_instance.n
        classification = classify_cliques(mix_instance.network, mix_acd)
        hard_vertices = classification.hard_vertices()
        generate_sparse_slack(
            mix_instance.network, mix_acd, colors, list(range(16)),
            rng=random.Random(2), hard_vertices=hard_vertices,
        )
        net = mix_instance.network
        for v in mix_acd.sparse:
            if any(u in hard_vertices for u in net.adjacency[v]):
                assert colors[v] is None

    def test_low_degree_sparse_needs_nothing(self):
        """Vertices of degree < Delta are never deficient."""
        from repro.local import Network

        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        # Delta = 3 (vertices 0, 2); vertices 1, 3 have degree 2.
        colors: list[int | None] = [None] * 4
        assert _deficit(net, 1, colors, 3) <= 0


class TestGeneralPipeline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_sparse_dense(self, mix_instance, seed):
        result = delta_color_general(
            mix_instance.network, params=PARAMS, seed=seed
        )
        verify_coloring(mix_instance.network, result.colors, 16)
        assert result.stats["sparse_vertices"] == 64
        assert result.stats["sparse_slack"].pairs_placed > 0

    def test_dense_only_input(self):
        instance = hard_clique_graph(34, 16)
        result = delta_color_general(instance.network, params=PARAMS, seed=0)
        verify_coloring(instance.network, result.colors, 16)
        assert result.stats["sparse_vertices"] == 0

    def test_public_dispatch(self, mix_instance):
        result = delta_color(
            mix_instance.network, method="general", epsilon=0.25, seed=0
        )
        assert result.algorithm.startswith("general")
        verify_coloring(mix_instance.network, result.colors, 16)

    def test_seed_reproducibility(self, mix_instance):
        a = delta_color_general(mix_instance.network, params=PARAMS, seed=5)
        b = delta_color_general(mix_instance.network, params=PARAMS, seed=5)
        assert a.colors == b.colors

    def test_larger_blob(self):
        instance = sparse_dense_mix(
            34, 16, blob_size=128, attachments=6, seed=3
        )
        result = delta_color_general(instance.network, params=PARAMS, seed=0)
        verify_coloring(instance.network, result.colors, 16)
