"""Engine-parity suite: the rewritten hot path vs the frozen seed engine.

The overhaul of ``Network.run`` (preallocated inbox buffers, int
scheduling queue, lazy broadcast expansion, zero-cost bandwidth
accounting) must be observationally invisible: every ``RunResult`` —
rounds, messages, outputs, halt flags, bandwidth words — has to be
bit-identical to what the seed engine produces, across graph families,
shuffled uids, and full pipelines (whose RNG consumption order would
drift on the first scheduling difference).
"""

from __future__ import annotations

import random

import pytest

from repro.core.deterministic import delta_color_deterministic
from repro.core.randomized import delta_color_randomized
from repro.constants import AlgorithmParameters
from repro.errors import SimulationError
from repro.graphs import hard_clique_graph, projective_plane_clique_graph
from repro.local import (
    DistributedAlgorithm,
    FaultPlan,
    Network,
    Tracer,
    columnar_available,
    force_columnar_engine,
    force_legacy_engine,
    run_columnar,
    run_legacy,
)
from repro.subroutines.linial import LinialColoring
from repro.subroutines.maximal_matching import maximal_matching

requires_numpy = pytest.mark.skipif(
    not columnar_available(), reason="columnar engine needs numpy"
)


def _random_network(n: int, m: int, seed: int, *, shuffle_uids: bool = False) -> Network:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    uids = list(range(n))
    if shuffle_uids:
        rng.shuffle(uids)
    return Network.from_edges(n, sorted(edges), uids)


def _shuffled(network: Network, seed: int) -> Network:
    uids = list(network.uids)
    random.Random(seed).shuffle(uids)
    return Network(network.adjacency, uids, validate_structure=False)


#: name -> factory for a (network, algorithm-factory) pair.
FAMILIES = {
    "path": lambda: Network.from_edges(24, [(i, i + 1) for i in range(23)]),
    "hard-clique": lambda: hard_clique_graph(16, 8, seed=2).network,
    "pg-girth6": lambda: projective_plane_clique_graph(3).network,
    "gnm-random": lambda: _random_network(60, 150, 7),
    "gnm-shuffled": lambda: _random_network(60, 150, 7, shuffle_uids=True),
}


def assert_identical(fast, legacy):
    assert fast.rounds == legacy.rounds
    assert fast.messages == legacy.messages
    assert fast.outputs == legacy.outputs
    assert fast.halted == legacy.halted
    assert fast.max_message_words == legacy.max_message_words
    assert fast.total_message_words == legacy.total_message_words


class AlarmsAndUnicast(DistributedAlgorithm):
    """Mixes alarms, unicasts, and broadcasts to stress scheduling."""

    name = "alarms-and-unicast"

    def on_start(self, node, api):
        if node.index % 3 == 0:
            api.set_alarm(2 + node.index % 5)
        if node.neighbors:
            api.send(node.neighbors[0], node.uid)

    def on_round(self, node, api, inbox):
        total = node.state.get("total", 0) + sum(m for _, m in inbox)
        node.state["total"] = total
        if api.round >= 6:
            api.halt(total)
            return
        if inbox and node.neighbors:
            api.send(node.neighbors[total % len(node.neighbors)], total)
        else:
            api.broadcast(total)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_linial_parity(family):
    network = FAMILIES[family]()
    make = lambda: LinialColoring(max(network.uids) + 1, network.max_degree)  # noqa: E731
    fast = network.run(make(), measure_bandwidth=True)
    legacy = run_legacy(network, make(), measure_bandwidth=True)
    assert_identical(fast, legacy)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_mixed_schedule_parity(family):
    network = FAMILIES[family]()
    fast = network.run(AlarmsAndUnicast())
    legacy = run_legacy(network, AlarmsAndUnicast())
    assert_identical(fast, legacy)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_tracer_parity(family):
    network = FAMILIES[family]()
    fast_trace, legacy_trace = Tracer(), Tracer()
    network.run(AlarmsAndUnicast(), tracer=fast_trace)
    run_legacy(network, AlarmsAndUnicast(), tracer=legacy_trace)
    assert fast_trace.samples == legacy_trace.samples


@pytest.mark.parametrize("family", ["path", "hard-clique", "gnm-shuffled"])
def test_maximal_matching_parity(family):
    network = FAMILIES[family]()
    fast_matching, fast = maximal_matching(network)
    with force_legacy_engine():
        legacy_matching, legacy = maximal_matching(network)
    assert fast_matching == legacy_matching
    assert_identical(fast, legacy)


@pytest.mark.parametrize("shuffle_seed", [None, 11, 12])
def test_theorem1_pipeline_parity(shuffle_seed):
    instance = hard_clique_graph(16, 8, seed=3)
    network = instance.network
    if shuffle_seed is not None:
        network = _shuffled(network, shuffle_seed)
    params = AlgorithmParameters(epsilon=0.25)
    fast = delta_color_deterministic(network, params=params)
    with force_legacy_engine():
        legacy = delta_color_deterministic(network, params=params)
    assert fast.colors == legacy.colors
    assert fast.rounds == legacy.rounds
    assert fast.messages == legacy.messages
    assert fast.phase_rounds() == legacy.phase_rounds()


@pytest.mark.parametrize("seed", [0, 1])
def test_theorem2_pipeline_parity(seed):
    """Randomized pipeline: any scheduling drift would desynchronize the
    RNG consumption order and change the coloring."""
    instance = hard_clique_graph(32, 16, seed=4)
    params = AlgorithmParameters(epsilon=0.25)
    fast = delta_color_randomized(instance.network, params=params, seed=seed)
    with force_legacy_engine():
        legacy = delta_color_randomized(
            instance.network, params=params, seed=seed
        )
    assert fast.colors == legacy.colors
    assert fast.rounds == legacy.rounds
    assert fast.messages == legacy.messages


def test_force_legacy_engine_restores():
    from repro.local import network as network_module

    assert network_module._FORCE_LEGACY is False
    with force_legacy_engine():
        assert network_module._FORCE_LEGACY is True
        with force_legacy_engine():
            assert network_module._FORCE_LEGACY is True
        assert network_module._FORCE_LEGACY is True
    assert network_module._FORCE_LEGACY is False


# ---------------------------------------------------------------------------
# Columnar engine: the same bit-identical bar, against both other engines.
# ---------------------------------------------------------------------------


class DropSensitiveGossip(DistributedAlgorithm):
    """Spread uids for a few rounds; outputs shift with any lost message."""

    name = "drop-sensitive-gossip"

    def on_start(self, node, api):
        node.state["seen"] = {node.uid}
        api.broadcast(node.uid)

    def on_round(self, node, api, inbox):
        seen = node.state["seen"]
        fresh = {uid for _, uid in inbox} - seen
        seen.update(fresh)
        if api.round >= 4:
            api.halt(sorted(seen))
        elif fresh:
            api.broadcast(max(fresh))


@requires_numpy
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_columnar_linial_parity(family):
    network = FAMILIES[family]()
    make = lambda: LinialColoring(max(network.uids) + 1, network.max_degree)  # noqa: E731
    columnar = run_columnar(network, make(), measure_bandwidth=True)
    fast = network.run(make(), measure_bandwidth=True)
    legacy = run_legacy(network, make(), measure_bandwidth=True)
    assert_identical(columnar, fast)
    assert_identical(columnar, legacy)


@requires_numpy
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_columnar_mixed_schedule_parity(family):
    network = FAMILIES[family]()
    with force_columnar_engine():
        columnar = network.run(AlarmsAndUnicast())
    fast = network.run(AlarmsAndUnicast())
    assert_identical(columnar, fast)


@requires_numpy
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_columnar_tracer_parity(family):
    network = FAMILIES[family]()
    columnar_trace, fast_trace = Tracer(), Tracer()
    with force_columnar_engine():
        network.run(AlarmsAndUnicast(), tracer=columnar_trace)
    network.run(AlarmsAndUnicast(), tracer=fast_trace)
    assert columnar_trace.samples == fast_trace.samples


@requires_numpy
@pytest.mark.parametrize("shuffle_seed", [None, 11])
def test_columnar_theorem1_pipeline_parity(shuffle_seed):
    instance = hard_clique_graph(16, 8, seed=3)
    network = instance.network
    if shuffle_seed is not None:
        network = _shuffled(network, shuffle_seed)
    params = AlgorithmParameters(epsilon=0.25)
    with force_columnar_engine():
        columnar = delta_color_deterministic(network, params=params)
    fast = delta_color_deterministic(network, params=params)
    assert columnar.colors == fast.colors
    assert columnar.rounds == fast.rounds
    assert columnar.messages == fast.messages
    assert columnar.phase_rounds() == fast.phase_rounds()


@requires_numpy
@pytest.mark.parametrize("seed", [0, 1])
def test_columnar_theorem2_pipeline_parity(seed):
    """Any scheduling drift in the columnar delivery order desynchronizes
    the RNG consumption order and changes the coloring."""
    instance = hard_clique_graph(32, 16, seed=4)
    params = AlgorithmParameters(epsilon=0.25)
    with force_columnar_engine():
        columnar = delta_color_randomized(
            instance.network, params=params, seed=seed
        )
    fast = delta_color_randomized(instance.network, params=params, seed=seed)
    assert columnar.colors == fast.colors
    assert columnar.rounds == fast.rounds
    assert columnar.messages == fast.messages


@requires_numpy
@pytest.mark.parametrize("plan", [
    FaultPlan(drop_probability=0.3, seed=5),
    FaultPlan(crashes=((2, 2), (7, 3))),
    FaultPlan(round_budget=3),
    FaultPlan(drop_probability=0.15, crashes=((4, 2),), round_budget=4, seed=9),
])
def test_columnar_faults_parity(plan):
    """Fault injection (drops, crash-stop, budgets) must consume the
    plan's RNG in the same order and account identically."""
    network = _random_network(40, 90, 13)
    with force_columnar_engine():
        columnar = network.run(DropSensitiveGossip(), faults=plan)
    fast = network.run(DropSensitiveGossip(), faults=plan)
    assert_identical(columnar, fast)
    assert columnar.dropped_messages == fast.dropped_messages
    assert columnar.crashed_nodes == fast.crashed_nodes
    assert columnar.budget_exhausted == fast.budget_exhausted


@requires_numpy
def test_columnar_faults_tracer_parity():
    network = _random_network(40, 90, 13)
    plan = FaultPlan(drop_probability=0.2, crashes=((3, 2),), seed=7)
    columnar_trace, fast_trace = Tracer(), Tracer()
    with force_columnar_engine():
        network.run(DropSensitiveGossip(), tracer=columnar_trace, faults=plan)
    network.run(DropSensitiveGossip(), tracer=fast_trace, faults=plan)
    assert columnar_trace.samples == fast_trace.samples


def test_force_columnar_engine_restores():
    from repro.local import network as network_module

    before = network_module._FORCE_COLUMNAR
    with force_columnar_engine():
        assert network_module._FORCE_COLUMNAR is True
        with force_columnar_engine():
            assert network_module._FORCE_COLUMNAR is True
        assert network_module._FORCE_COLUMNAR is True
    assert network_module._FORCE_COLUMNAR is before


def test_legacy_wins_over_columnar():
    """The frozen reference engine takes precedence when both are forced:
    legacy rejects fault plans, so a fault run raising proves which
    engine handled it."""
    network = Network.from_edges(4, [(i, i + 1) for i in range(3)])
    with force_columnar_engine(), force_legacy_engine():
        with pytest.raises(SimulationError, match="legacy"):
            network.run(
                DropSensitiveGossip(),
                faults=FaultPlan(drop_probability=0.5, seed=1),
            )


def test_columnar_falls_back_to_fast_without_numpy(monkeypatch):
    """With numpy absent the forced-columnar dispatch silently uses the
    fast engine; calling ``run_columnar`` directly is a hard error."""
    from repro.local import columnar as columnar_module

    network = FAMILIES["path"]()
    baseline = network.run(AlarmsAndUnicast())
    monkeypatch.setattr(columnar_module, "_np", None)
    assert not columnar_available()
    with force_columnar_engine():
        fallback = network.run(AlarmsAndUnicast())
    assert_identical(fallback, baseline)
    with pytest.raises(SimulationError, match="numpy"):
        run_columnar(network, AlarmsAndUnicast())
