"""Tests for round/message accounting."""

from __future__ import annotations

import pytest

from repro.local import LedgerEntry, RoundLedger
from repro.local.result import RunResult


class TestLedger:
    def test_totals(self):
        ledger = RoundLedger()
        ledger.charge("a", 5, 10)
        ledger.charge("b", 7, 20)
        assert ledger.total_rounds == 12
        assert ledger.total_messages == 30

    def test_breakdown_groups_by_top_level_label(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3)
        ledger.charge("hard/phase2/split", 4)
        ledger.charge("easy/layer-1", 2)
        assert ledger.breakdown() == {"hard": 7, "easy": 2}

    def test_rounds_for_prefix(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3)
        ledger.charge("hard/phase1/heg", 4)
        ledger.charge("hard/phase2/split", 5)
        assert ledger.rounds_for("hard/phase1") == 7

    def test_charge_result_scales_rounds_not_messages(self):
        ledger = RoundLedger()
        result = RunResult(rounds=4, messages=9, outputs=[])
        ledger.charge_result("virtual", result, scale=3)
        assert ledger.total_rounds == 12
        assert ledger.total_messages == 9

    def test_merge_with_prefix_and_scale(self):
        inner = RoundLedger()
        inner.charge("mm", 2, 5)
        outer = RoundLedger()
        outer.merge(inner, prefix="component", scale=2)
        assert outer.entries == [LedgerEntry("component/mm", 4, 5)]

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            LedgerEntry("bad", -1)

    def test_empty_ledger(self):
        ledger = RoundLedger()
        assert ledger.total_rounds == 0
        assert ledger.breakdown() == {}
