"""Tests for round/message accounting."""

from __future__ import annotations

import pytest

from repro.local import LedgerEntry, RoundLedger
from repro.local.result import RunResult


class TestLedger:
    def test_totals(self):
        ledger = RoundLedger()
        ledger.charge("a", 5, 10)
        ledger.charge("b", 7, 20)
        assert ledger.total_rounds == 12
        assert ledger.total_messages == 30

    def test_breakdown_groups_by_top_level_label(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3)
        ledger.charge("hard/phase2/split", 4)
        ledger.charge("easy/layer-1", 2)
        assert ledger.breakdown() == {"hard": 7, "easy": 2}

    def test_rounds_for_prefix(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3)
        ledger.charge("hard/phase1/heg", 4)
        ledger.charge("hard/phase2/split", 5)
        assert ledger.rounds_for("hard/phase1") == 7

    def test_charge_result_scales_rounds_not_messages(self):
        ledger = RoundLedger()
        result = RunResult(rounds=4, messages=9, outputs=[])
        ledger.charge_result("virtual", result, scale=3)
        assert ledger.total_rounds == 12
        assert ledger.total_messages == 9

    def test_merge_with_prefix_and_scale(self):
        inner = RoundLedger()
        inner.charge("mm", 2, 5)
        outer = RoundLedger()
        outer.merge(inner, prefix="component", scale=2)
        assert outer.entries == [LedgerEntry("component/mm", 4, 5)]

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            LedgerEntry("bad", -1)

    def test_empty_ledger(self):
        ledger = RoundLedger()
        assert ledger.total_rounds == 0
        assert ledger.breakdown() == {}

    def test_messages_for_prefix(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3, 10)
        ledger.charge("hard/phase1/heg", 4, 20)
        ledger.charge("hard/phase2/split", 5, 40)
        ledger.charge("easy/layer-1", 2, 80)
        assert ledger.messages_for("hard/phase1") == 30
        assert ledger.messages_for("hard") == 70
        assert ledger.messages_for("nope") == 0

    def test_messages_breakdown_groups_by_top_level_label(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3, 10)
        ledger.charge("hard/phase2/split", 4, 5)
        ledger.charge("easy/layer-1", 2, 7)
        ledger.charge("acd", 6)
        assert ledger.messages_breakdown() == {
            "hard": 15, "easy": 7, "acd": 0,
        }

    def test_messages_breakdown_totals_match(self):
        ledger = RoundLedger()
        ledger.charge("a/x", 1, 3)
        ledger.charge("a/y", 2, 4)
        ledger.charge("b", 3, 5)
        assert (
            sum(ledger.messages_breakdown().values())
            == ledger.total_messages
        )
        assert sum(ledger.breakdown().values()) == ledger.total_rounds

    def test_breakdown_full_pairs_rounds_and_messages(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3, 10)
        ledger.charge("hard/phase2/split", 4, 5)
        ledger.charge("easy", 2, 7)
        assert ledger.breakdown_full() == {
            "hard": (7, 15), "easy": (2, 7),
        }


class TestScaleValidation:
    @pytest.mark.parametrize("scale", [0, -1, -7])
    def test_charge_result_rejects_nonpositive_scale(self, scale):
        ledger = RoundLedger()
        result = RunResult(rounds=4, messages=9, outputs=[])
        with pytest.raises(ValueError, match="virtual"):
            ledger.charge_result("virtual-phase", result, scale=scale)

    def test_charge_result_error_names_the_label(self):
        ledger = RoundLedger()
        result = RunResult(rounds=4, messages=9, outputs=[])
        with pytest.raises(ValueError, match="hard/phase1/heg"):
            ledger.charge_result("hard/phase1/heg", result, scale=0)

    @pytest.mark.parametrize("scale", [0, -2])
    def test_merge_rejects_nonpositive_scale(self, scale):
        inner = RoundLedger()
        inner.charge("mm", 2, 5)
        outer = RoundLedger()
        with pytest.raises(ValueError, match="component"):
            outer.merge(inner, prefix="component", scale=scale)

    def test_merge_error_without_prefix_uses_placeholder(self):
        outer = RoundLedger()
        with pytest.raises(ValueError, match="<merge>"):
            outer.merge(RoundLedger(), scale=0)

    def test_nothing_charged_on_rejection(self):
        ledger = RoundLedger()
        result = RunResult(rounds=4, messages=9, outputs=[])
        with pytest.raises(ValueError):
            ledger.charge_result("x", result, scale=0)
        assert ledger.entries == []
