"""Tests for adversarial instance surgery and the pipeline's responses."""

from __future__ import annotations

import pytest

from repro import delta_color, verify_coloring
from repro.acd import compute_acd
from repro.constants import AlgorithmParameters
from repro.core import classify_cliques
from repro.errors import GraphStructureError
from repro.graphs import (
    brooks_obstruction,
    hard_clique_graph,
    plant_external_edge,
    plant_nonclique_pair,
    plant_shared_outside_neighbor,
)

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def base():
    return hard_clique_graph(34, 16, seed=3)


def classify(instance):
    acd = compute_acd(instance.network, epsilon=0.25)
    return classify_cliques(instance.network, acd)


class TestSurgery:
    def test_shared_outside_neighbor_flips_to_easy(self, base):
        tampered = plant_shared_outside_neighbor(base, clique=0)
        net = tampered.network
        assert all(net.degree(v) == 16 for v in range(net.n))
        classification = classify(tampered)
        assert 0 in classification.easy
        assert classification.reasons[0] == "H3"

    def test_external_edge_flips_to_easy(self, base):
        tampered = plant_external_edge(base, clique=0)
        net = tampered.network
        assert all(net.degree(v) == 16 for v in range(net.n))
        classification = classify(tampered)
        assert 0 in classification.easy
        assert classification.reasons[0] == "H4"

    def test_nonclique_pair_keeps_degrees(self, base):
        tampered = plant_nonclique_pair(base, clique=0)
        net = tampered.network
        assert all(net.degree(v) == 16 for v in range(net.n))

    def test_nonclique_pair_flips_to_easy(self, base):
        tampered = plant_nonclique_pair(base, clique=0)
        classification = classify(tampered)
        assert 0 in classification.easy

    def test_original_untouched(self, base):
        edges_before = base.network.edges()
        plant_shared_outside_neighbor(base, clique=0)
        assert base.network.edges() == edges_before


class TestPipelineOnAdversarial:
    """Every surgically-violated instance must still be colored (the
    violation only moves cliques from hard to easy)."""

    def test_colors_after_h3_surgery(self, base):
        tampered = plant_shared_outside_neighbor(base, clique=0)
        result = delta_color(tampered.network, epsilon=0.25)
        assert result.num_colors == 16  # degrees preserved: still Delta
        verify_coloring(tampered.network, result.colors, 16)

    def test_colors_after_h2_surgery(self, base):
        tampered = plant_nonclique_pair(base, clique=0)
        result = delta_color(tampered.network, epsilon=0.25)
        verify_coloring(tampered.network, result.colors, 16)

    def test_colors_after_h4_surgery(self, base):
        tampered = plant_external_edge(base, clique=0)
        result = delta_color(tampered.network, epsilon=0.25)
        assert result.num_colors == 16
        verify_coloring(tampered.network, result.colors, 16)

    def test_brooks_obstruction_rejected(self):
        net = brooks_obstruction(5)
        with pytest.raises(GraphStructureError, match="Brooks|clique"):
            delta_color(net, epsilon=0.25)
