"""Tests for the post-run analysis module."""

from __future__ import annotations

import pytest

from repro.analysis import (
    clique_palette_usage,
    coloring_stats,
    same_colored_pairs,
)
from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic
from repro.local import Network

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def colored(hard_instance):
    result = delta_color_deterministic(hard_instance.network, params=PARAMS)
    return hard_instance, result


class TestColoringStats:
    def test_basic_shape(self, colored):
        instance, result = colored
        stats = coloring_stats(instance.network, result.colors, 16)
        assert stats.num_colors == 16
        assert stats.used_colors == 16  # cliques of size 16 need them all
        assert sum(stats.histogram.values()) == instance.n
        assert 0 < stats.balance <= 1.0

    def test_slack_vertices_have_duplicates(self, colored):
        instance, result = colored
        stats = coloring_stats(instance.network, result.colors, 16)
        # Every clique had one slack vertex whose pair was same-colored.
        assert stats.vertices_with_duplicate_neighbors >= 34

    def test_path_graph(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        stats = coloring_stats(net, [0, 1, 0], 2)
        assert stats.histogram == {0: 2, 1: 1}
        assert stats.vertices_with_duplicate_neighbors == 1  # the middle


class TestCliquePalette:
    def test_full_cliques_use_size_many_colors(self, colored, hard_acd):
        instance, result = colored
        usage = clique_palette_usage(instance.network, hard_acd, result.colors)
        assert all(count == 16 for count in usage.values())


class TestSameColoredPairs:
    def test_planted_pairs_recovered(self, colored):
        instance, result = colored
        pairs = same_colored_pairs(instance.network, result.colors)
        assert len(pairs) >= 34
        for via, a, b in pairs[:10]:
            assert result.colors[a] == result.colors[b]
            assert b not in instance.network.neighbor_set(a)

    def test_none_on_rainbow_neighborhoods(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        assert same_colored_pairs(net, [0, 1, 2]) == []
