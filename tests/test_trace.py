"""Tests for the execution tracer."""

from __future__ import annotations

from repro.local import Network, Tracer
from repro.subroutines.deg_list_coloring import _SweepListColoring
from repro.subroutines.linial import LinialColoring
from tests.conftest import random_network


class TestTracer:
    def test_flood_profile(self):
        from tests.test_local_network import Flood

        net = Network.from_edges(5, [(i, i + 1) for i in range(4)])
        tracer = Tracer()
        result = net.run(Flood(), tracer=tracer)
        assert tracer.executed_rounds == result.rounds
        # One node joins per round along the path.
        assert [s.scheduled for s in tracer.samples] == [1, 1, 1, 1]
        assert tracer.samples[-1].halted_total == 5

    def test_quiet_fraction_of_sweep(self):
        """A color-class sweep is mostly quiet rounds — the profile
        shows the engine's fast-forwarding does not hide real cost."""
        net = random_network(120, 360, seed=1)
        linial_result = net.run(
            LinialColoring(max(net.uids) + 1, net.max_degree)
        )
        classes = [node.state["color"] for node in net.nodes]
        lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]
        tracer = Tracer()
        result = net.run(_SweepListColoring(lists, classes), tracer=tracer)
        assert tracer.executed_rounds <= result.rounds
        assert 0.0 <= tracer.quiet_fraction(result.rounds) < 1.0
        assert tracer.peak_scheduled >= 1

    def test_activity_profile_shape(self):
        from tests.test_local_network import Flood

        net = Network.from_edges(3, [(0, 1), (1, 2)])
        tracer = Tracer()
        net.run(Flood(), tracer=tracer)
        profile = tracer.activity_profile()
        assert profile == [(1, 1), (2, 1)]

    def test_quiet_fraction_degenerate(self):
        tracer = Tracer()
        assert tracer.quiet_fraction(0) == 0.0


class _AlarmScript:
    """Scripted run: one node wakes at fixed alarm rounds, then halts.

    The gaps between alarms are fast-forwarded quiet rounds, so both the
    activity profile and the quiet fraction are known exactly.
    """

    name = "alarm-script"

    def __init__(self, wake_rounds):
        self.wake_rounds = list(wake_rounds)

    def on_start(self, node, api):
        api.set_alarm(self.wake_rounds[0])

    def on_round(self, node, api, inbox):
        remaining = [r for r in self.wake_rounds if r > api.round]
        if remaining:
            api.set_alarm(remaining[0])
        else:
            api.halt(api.round)


class TestScriptedProfiles:
    def test_activity_profile_matches_script(self):
        net = Network.from_edges(1, [])
        tracer = Tracer()
        result = net.run(_AlarmScript([3, 7, 20]), tracer=tracer)
        assert result.rounds == 20
        assert tracer.activity_profile() == [(3, 1), (7, 1), (20, 1)]

    def test_quiet_fraction_matches_script(self):
        net = Network.from_edges(1, [])
        tracer = Tracer()
        result = net.run(_AlarmScript([5, 10]), tracer=tracer)
        # 2 executed rounds out of 10 LOCAL rounds -> 80% quiet.
        assert tracer.executed_rounds == 2
        assert tracer.quiet_fraction(result.rounds) == 0.8

    def test_quiet_fraction_clamped_for_partial_totals(self):
        net = Network.from_edges(1, [])
        tracer = Tracer()
        net.run(_AlarmScript([2, 4]), tracer=tracer)
        # A caller-supplied total smaller than executed_rounds clamps.
        assert tracer.quiet_fraction(1) == 0.0
        assert tracer.quiet_fraction(100) == 0.98
