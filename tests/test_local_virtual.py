"""Tests for virtual-graph adapters."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.local import Network, VirtualNetwork


def base() -> Network:
    # Two triangles joined by one edge: 0-1-2 and 3-4-5, edge 2-3.
    return Network.from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


class TestVirtualNetwork:
    def test_edges_induced_by_base_edges(self):
        virtual = VirtualNetwork(base(), [[0, 1, 2], [3, 4, 5]])
        assert virtual.n == 2
        assert virtual.edges() == [(0, 1)]

    def test_no_edge_between_disconnected_groups(self):
        virtual = VirtualNetwork(base(), [[0, 1], [4, 5]])
        assert virtual.edges() == []

    def test_overlapping_groups_rejected(self):
        with pytest.raises(SimulationError, match="belongs to virtual nodes"):
            VirtualNetwork(base(), [[0, 1], [1, 2]])

    def test_empty_group_rejected(self):
        with pytest.raises(SimulationError, match="empty group"):
            VirtualNetwork(base(), [[0], []])

    def test_extra_edges(self):
        virtual = VirtualNetwork(
            base(), [[0], [5]], extra_edges=[(0, 1)]
        )
        assert virtual.edges() == [(0, 1)]

    def test_round_scaling(self):
        virtual = VirtualNetwork(base(), [[0, 1, 2], [3, 4, 5]], round_scale=4)
        assert virtual.base_rounds(5) == 20

    def test_virtual_uids_are_group_minimum(self):
        net = Network.from_edges(4, [(0, 1), (2, 3), (1, 2)], uids=[9, 4, 7, 2])
        virtual = VirtualNetwork(net, [[0, 1], [2, 3]])
        assert virtual.uids == [4, 2]

    def test_group_of(self):
        virtual = VirtualNetwork(base(), [[0, 1, 2], [3, 4]])
        assert virtual.group_of(4) == 1
        assert virtual.group_of(5) is None

    def test_intra_group_edges_do_not_create_loops(self):
        virtual = VirtualNetwork(base(), [[0, 1, 2]])
        assert virtual.edges() == []
