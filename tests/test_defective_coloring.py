"""Tests for Kuhn-style defective coloring."""

from __future__ import annotations

import pytest

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import defective_coloring, verify_defective_coloring
from tests.conftest import random_network


class TestDefectiveColoring:
    def test_zero_defect_is_proper(self):
        net = random_network(150, 450, seed=1)
        colors, _ = defective_coloring(net, 0)
        assert verify_defective_coloring(net, colors, 0) == 0

    def test_defect_reduces_palette(self):
        # Spread-out uids so the reduction genuinely engages.
        net = random_network(200, 1200, seed=2)
        net = Network(net.adjacency, [u * 10 ** 6 + 1 for u in net.uids])
        proper, _ = defective_coloring(net, 0, id_space=200 * 10 ** 6 + 2)
        loose, _ = defective_coloring(net, 4, id_space=200 * 10 ** 6 + 2)
        assert max(loose) < max(proper)

    def test_defect_bound_respected(self):
        net = random_network(150, 600, seed=3)
        colors, result = defective_coloring(net, 3)
        # The verified bound inside defective_coloring already ran; the
        # realized defect must also respect the per-step accumulation.
        worst = verify_defective_coloring(net, colors, 3 * 8)
        assert worst >= 0

    def test_negative_defect_rejected(self):
        net = random_network(10, 20, seed=4)
        with pytest.raises(SubroutineError):
            defective_coloring(net, -1)

    def test_isolated_vertices(self):
        net = Network.from_edges(3, [])
        colors, result = defective_coloring(net, 2)
        assert len(colors) == 3

    def test_verify_raises_on_excess(self):
        net = Network.from_edges(2, [(0, 1)])
        with pytest.raises(SubroutineError, match="same-colored"):
            verify_defective_coloring(net, [0, 0], 0)
