"""Protocol fuzzing and slowloris-defense tests for the serve front end.

The contract under attack traffic: every malformed input gets a
canonical ``bad_request``/``unsupported`` error body or a clean close —
never an unhandled exception — and the server keeps serving well-formed
clients afterwards.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from contextlib import asynccontextmanager

import pytest

from repro.graphs import hard_clique_graph
from repro.serve import (
    DEFAULT_IDLE_TIMEOUT_S,
    ColoringServer,
    ServeConfig,
)

@pytest.fixture(scope="module")
def payload():
    instance = hard_clique_graph(16, 8, seed=3)
    return {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }


@asynccontextmanager
async def serving(tmp_path, **overrides):
    options = {"jobs": 0, "linger_ms": 1.0}
    options.update(overrides)
    config = ServeConfig(unix_path=str(tmp_path / "serve.sock"), **options)
    server = ColoringServer(config)
    await server.start()
    try:
        yield server, config
    finally:
        await server.close()


async def raw_connection(config):
    return await asyncio.open_unix_connection(config.unix_path)


async def send_line(writer, reader, data: bytes) -> dict:
    writer.write(data)
    await writer.drain()
    return json.loads(await reader.readline())


async def server_still_serves(config) -> None:
    """The canary: a well-formed health check on a fresh connection."""
    reader, writer = await raw_connection(config)
    try:
        response = await send_line(writer, reader, b'{"op": "health"}\n')
        assert response["ok"] and response["status"] == "ok"
    finally:
        writer.close()
        await writer.wait_closed()


def slow_runner(specs, instances):
    time.sleep(0.3)
    return [
        {"key": spec["key"], "result": {"colors": [0], "num_colors": 1}}
        for spec in specs
    ]


# ----------------------------------------------------------------------
# Malformed frames
# ----------------------------------------------------------------------


class TestProtocolFuzz:
    def test_binary_garbage_gets_bad_request(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                try:
                    response = await send_line(
                        writer, reader, b"\xde\xad\xbe\xef\x00\xff\n"
                    )
                    assert response["ok"] is False
                    assert response["error"]["code"] == "bad_request"
                finally:
                    writer.close()
                    await writer.wait_closed()
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_truncated_frame_then_disconnect_is_clean(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                # Half a JSON object, no newline, then vanish.
                writer.write(b'{"op": "color", "method": "rand')
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_mid_request_reset_is_clean(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                writer.write(b'{"op": "status"')
                await writer.drain()
                writer.transport.abort()  # RST, not FIN
                await asyncio.sleep(0.05)
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_oversized_line_is_refused_not_buffered(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                try:
                    # Past MAX_LINE_BYTES (32 MiB) without a newline: the
                    # stream limit trips and the server must answer with
                    # a canonical error, not eat unbounded memory.
                    chunk = b'{"op": "color", "pad": "' + b"x" * (1 << 20)
                    for _ in range(33):
                        writer.write(chunk)
                        await writer.drain()
                    response = json.loads(
                        await asyncio.wait_for(reader.readline(), 10)
                    )
                    assert response["ok"] is False
                    assert response["error"]["code"] == "bad_request"
                    assert "line" in response["error"]["message"]
                except (ConnectionError, OSError):
                    pass  # a clean close mid-write is acceptable too
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_seeded_garbage_stream_never_kills_the_server(self, tmp_path):
        """Seeded fuzz: 100 random byte lines; every answered line is a
        canonical error and the server survives the whole barrage."""
        rng = random.Random(1234)
        lines = [
            bytes(
                rng.randrange(1, 256)  # no embedded newlines
                if rng.random() < 0.8 else rng.randrange(32, 127)
                for _ in range(rng.randrange(1, 200))
            ).replace(b"\n", b" ") + b"\n"
            for _ in range(100)
        ]

        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                try:
                    for line in lines:
                        writer.write(line)
                    await writer.drain()
                    answered = 0
                    while answered < len(lines):
                        raw = await asyncio.wait_for(reader.readline(), 5)
                        if not raw:
                            break  # server may close on a hostile stream
                        response = json.loads(raw)
                        assert response["ok"] is False
                        assert response["error"]["code"] in (
                            "bad_request", "unsupported"
                        )
                        answered += 1
                    assert answered > 0
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_valid_json_wrong_shape_gets_bad_request(self, tmp_path):
        cases = [b"[1, 2, 3]\n", b'"a string"\n', b"42\n", b'{"no": "op"}\n']

        async def scenario():
            async with serving(tmp_path) as (server, config):
                reader, writer = await raw_connection(config)
                try:
                    for case in cases:
                        response = await send_line(writer, reader, case)
                        assert response["ok"] is False
                        assert response["error"]["code"] == "bad_request"
                finally:
                    writer.close()
                    await writer.wait_closed()
                await server_still_serves(config)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Slowloris defense (idle read timeout)
# ----------------------------------------------------------------------


class TestIdleTimeout:
    def test_defaults_off_on_unix_on_for_tcp(self, tmp_path):
        unix = ServeConfig(unix_path=str(tmp_path / "s.sock"))
        assert unix.resolved_idle_timeout is None
        tcp = ServeConfig(port=0)
        assert tcp.resolved_idle_timeout == DEFAULT_IDLE_TIMEOUT_S
        explicit_off = ServeConfig(port=0, idle_timeout_s=0)
        assert explicit_off.resolved_idle_timeout is None
        explicit_on = ServeConfig(
            unix_path=str(tmp_path / "s.sock"), idle_timeout_s=2.5
        )
        assert explicit_on.resolved_idle_timeout == 2.5

    def test_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError, match="idle_timeout_s"):
            ServeConfig(idle_timeout_s=-1)

    def test_silent_connection_is_reaped_with_canonical_error(self, tmp_path):
        async def scenario():
            async with serving(tmp_path, idle_timeout_s=0.1) as (
                server, config,
            ):
                reader, writer = await raw_connection(config)
                try:
                    raw = await asyncio.wait_for(reader.readline(), 5)
                    response = json.loads(raw)
                    assert response["ok"] is False
                    assert response["error"]["code"] == "idle_timeout"
                    assert await reader.readline() == b""  # then EOF
                finally:
                    writer.close()
                    await writer.wait_closed()
                await server_still_serves(config)

        asyncio.run(scenario())

    def test_connection_waiting_on_in_flight_work_is_not_reaped(
        self, tmp_path, payload
    ):
        """A client that sent a request and is quietly awaiting the
        response must survive idle periods longer than the timeout."""

        async def scenario():
            async with serving(
                tmp_path, idle_timeout_s=0.1, batch_runner=slow_runner,
                cache_size=0, max_batch=1, linger_ms=0.0,
            ) as (server, config):
                reader, writer = await raw_connection(config)
                try:
                    registered = await send_line(
                        writer, reader,
                        json.dumps(
                            {"op": "register", "instance": payload}
                        ).encode() + b"\n",
                    )
                    body = {
                        "op": "color", "method": "randomized", "seed": 1,
                        "epsilon": 0.25,
                        "instance_hash": registered["instance_hash"],
                    }
                    # slow_runner holds this for 0.3s = 3x the idle bound.
                    response = await send_line(
                        writer, reader, json.dumps(body).encode() + b"\n"
                    )
                    assert response["ok"], response
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())

    def test_activity_resets_the_idle_clock(self, tmp_path):
        async def scenario():
            async with serving(tmp_path, idle_timeout_s=0.15) as (
                server, config,
            ):
                reader, writer = await raw_connection(config)
                try:
                    for _ in range(4):  # 0.4s total, each gap < 0.15s
                        await asyncio.sleep(0.1)
                        response = await send_line(
                            writer, reader, b'{"op": "health"}\n'
                        )
                        assert response["ok"]
                finally:
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(scenario())
