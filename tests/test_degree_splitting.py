"""Tests for degree splitting (Lemma 21 / Corollary 22)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubroutineError
from repro.subroutines import iterated_split, split_discrepancy, split_edges


def random_multigraph(
    n: int, per_vertex: int, seed: int
) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    edges = []
    for v in range(n):
        for _ in range(per_vertex):
            u = rng.randrange(n)
            if u != v:
                edges.append((v, u))
    return edges


class TestSingleSplit:
    def test_two_parts_cover_everything(self):
        edges = random_multigraph(50, 10, 1)
        result = split_edges(50, edges)
        assert set(result.part_of) <= {0, 1}
        assert len(result.part_of) == len(edges)

    def test_discrepancy_small(self):
        edges = random_multigraph(80, 14, 2)
        result = split_edges(80, edges, epsilon=1 / 8)
        # Lemma 21: discrepancy eps*d + 4; degrees ~28, so <= ~7.5.
        assert split_discrepancy(80, edges, result) <= 28 / 8 + 4

    def test_cycle_alternates_perfectly(self):
        # A single even cycle: one trail, near-perfect alternation.
        n = 40
        edges = [(i, (i + 1) % n) for i in range(n)]
        result = split_edges(n, edges)
        assert split_discrepancy(n, edges, result) <= 1.5

    def test_star_splits_evenly(self):
        edges = [(0, i) for i in range(1, 21)]
        result = split_edges(21, edges)
        assert split_discrepancy(21, edges, result) <= 1.0

    def test_parallel_edges_supported(self):
        edges = [(0, 1)] * 6
        result = split_edges(2, edges)
        counts = [result.part_of.count(p) for p in (0, 1)]
        assert abs(counts[0] - counts[1]) <= 2

    def test_self_loop_rejected(self):
        with pytest.raises(SubroutineError, match="self-loop"):
            split_edges(2, [(0, 0)])

    def test_bad_epsilon_rejected(self):
        with pytest.raises(SubroutineError):
            split_edges(2, [(0, 1)], epsilon=0)

    def test_duplicate_edge_uids_rejected(self):
        with pytest.raises(SubroutineError, match="unique"):
            split_edges(2, [(0, 1), (1, 0)], edge_uids=[1, 1])

    def test_rounds_reported(self):
        edges = random_multigraph(50, 6, 3)
        result = split_edges(50, edges, epsilon=1 / 4)
        assert result.rounds > 0


class TestIteratedSplit:
    def test_four_parts(self):
        edges = random_multigraph(60, 12, 4)
        result = iterated_split(60, edges, 2)
        assert result.num_parts == 4
        assert set(result.part_of) <= {0, 1, 2, 3}

    def test_corollary22_bound(self):
        """Per-part counts stay within deg/4 +- (eps*deg + a)."""
        edges = random_multigraph(100, 14, 5)
        result = iterated_split(100, edges, 2, epsilon=1 / 8)
        degree = [0] * 100
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        worst = split_discrepancy(100, edges, result)
        max_degree = max(degree)
        a = 2 * sum((0.5 + 1 / 32) ** j for j in range(2))
        assert worst <= max_degree / 8 + a + 1

    def test_zero_iterations_identity(self):
        edges = [(0, 1), (1, 2)]
        result = iterated_split(3, edges, 0)
        assert result.part_of == [0, 0]
        assert result.num_parts == 1

    def test_negative_iterations_rejected(self):
        with pytest.raises(SubroutineError):
            iterated_split(2, [(0, 1)], -1)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_property_balanced(self, seed):
        edges = random_multigraph(40, 10, seed)
        result = split_edges(40, edges, epsilon=1 / 8)
        # Lemma 21 undirected bound with a small safety margin for the
        # engineering splitter (verified downstream in the pipeline).
        degree = [0] * 40
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        worst = split_discrepancy(40, edges, result)
        assert worst <= max(degree) / 8 + 5


class TestDirectedSplit:
    def test_balanced_on_random_multigraph(self):
        from repro.subroutines import directed_discrepancy, directed_split

        edges = random_multigraph(80, 10, 7)
        result = directed_split(80, edges, epsilon=1 / 8)
        degree = [0] * 80
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        # Lemma 21 (directed): discrepancy <= eps * d(v) + O(1).
        assert directed_discrepancy(80, edges, result) <= max(degree) / 8 + 6

    def test_even_cycle_perfectly_balanced(self):
        from repro.subroutines import directed_discrepancy, directed_split

        n = 30
        edges = [(i, (i + 1) % n) for i in range(n)]
        result = directed_split(n, edges)
        assert directed_discrepancy(n, edges, result) <= 2

    def test_every_edge_oriented(self):
        from repro.subroutines import directed_split

        edges = random_multigraph(40, 6, 8)
        result = directed_split(40, edges)
        assert len(result.orientation) == len(edges)
        assert set(result.orientation) <= {0, 1}

    def test_star_alternates(self):
        from repro.subroutines import directed_discrepancy, directed_split

        edges = [(0, i) for i in range(1, 21)]
        result = directed_split(21, edges)
        assert directed_discrepancy(21, edges, result) <= 2

    def test_self_loop_rejected(self):
        from repro.subroutines import directed_split

        with pytest.raises(SubroutineError):
            directed_split(2, [(0, 0)])
