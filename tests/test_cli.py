"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    code = main([
        "generate", "--kind", "hard", "--cliques", "34", "--delta", "16",
        "--seed", "3", "-o", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_hard(self, instance_file):
        assert instance_file.exists()
        payload = json.loads(instance_file.read_text())
        assert payload["delta"] == 16

    def test_mixed(self, tmp_path, capsys):
        path = tmp_path / "mixed.json"
        assert main([
            "generate", "--kind", "mixed", "--cliques", "34", "--delta",
            "16", "--easy-fraction", "0.3", "--seed", "1", "-o", str(path),
        ]) == 0
        assert "mixed_dense_graph" in capsys.readouterr().out

    def test_projective_plane(self, tmp_path):
        path = tmp_path / "pg.json"
        assert main([
            "generate", "--kind", "pg", "--q", "5", "-o", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["delta"] == 6


class TestInfo:
    def test_dense_instance(self, instance_file, capsys):
        assert main(["info", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "34 almost-cliques" in out
        assert "34 hard" in out


class TestColorAndVerify:
    def test_roundtrip(self, instance_file, tmp_path, capsys):
        coloring = tmp_path / "coloring.json"
        assert main([
            "color", str(instance_file), "--method", "randomized",
            "--seed", "0", "-o", str(coloring),
        ]) == 0
        assert "16-coloring" in capsys.readouterr().out
        assert main(["verify", str(instance_file), str(coloring)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_report(self, instance_file, capsys):
        assert main([
            "color", str(instance_file), "--method", "randomized",
            "--seed", "1", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["num_colors"] == 16
        assert report["rounds"] > 0

    def test_bad_coloring_rejected(self, instance_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        payload = json.loads(instance_file.read_text())
        bad.write_text(json.dumps({
            "format": 1, "num_colors": 16, "colors": [0] * payload["n"],
        }))
        assert main(["verify", str(instance_file), str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_deterministic_color(self, instance_file, capsys):
        assert main(["color", str(instance_file)]) == 0
        assert "deterministic" in capsys.readouterr().out
