"""Tests for repro.serve.client: breakers, backoff, failover, hedging."""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager

import pytest

from repro.graphs import hard_clique_graph
from repro.serve import (
    BreakerConfig,
    CircuitBreaker,
    ClientError,
    ColoringServer,
    Endpoint,
    ResilientClient,
    RetryPolicy,
    ServeConfig,
)

EPSILON = 0.25


@pytest.fixture(scope="module")
def payload():
    instance = hard_clique_graph(16, 8, seed=3)
    return {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }


def fast_runner(specs, instances):
    return [
        {"key": spec["key"], "result": {"colors": [0], "num_colors": 1}}
        for spec in specs
    ]


def slow_runner(specs, instances):
    time.sleep(0.25)
    return [
        {"key": spec["key"], "result": {"colors": [1], "num_colors": 1}}
        for spec in specs
    ]


@asynccontextmanager
async def one_server(tmp_path, name, **overrides):
    options = {"jobs": 0, "linger_ms": 0.0, "batch_runner": fast_runner}
    options.update(overrides)
    config = ServeConfig(unix_path=str(tmp_path / f"{name}.sock"), **options)
    server = ColoringServer(config)
    await server.start()
    try:
        yield server
    finally:
        await server.close()


def color_body(payload, seed=1):
    return {
        "op": "color", "method": "randomized", "epsilon": EPSILON,
        "seed": seed, "instance": dict(payload), "include_colors": True,
    }


# ----------------------------------------------------------------------
# Endpoint specs
# ----------------------------------------------------------------------


class TestEndpoint:
    def test_parse_tcp(self):
        endpoint = Endpoint.parse("10.0.0.7:9001")
        assert (endpoint.host, endpoint.port) == ("10.0.0.7", 9001)
        assert endpoint.unix_path is None
        assert endpoint.label == "10.0.0.7:9001"

    def test_parse_bare_port_defaults_host(self):
        assert Endpoint.parse(":9001").host == "127.0.0.1"

    def test_parse_unix(self):
        endpoint = Endpoint.parse("unix:/tmp/serve.sock")
        assert endpoint.unix_path == "/tmp/serve.sock"
        assert endpoint.label == "unix:/tmp/serve.sock"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ClientError):
            Endpoint.parse("not-an-endpoint")
        with pytest.raises(ClientError):
            Endpoint.parse("unix:")


# ----------------------------------------------------------------------
# Seeded backoff schedules
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_same_seed_same_schedule(self):
        a = RetryPolicy(attempts=5, seed=7)
        b = RetryPolicy(attempts=5, seed=7)
        for call_index in range(4):
            assert a.delays(call_index) == b.delays(call_index)

    def test_different_seed_different_schedule(self):
        assert (
            RetryPolicy(attempts=5, seed=1).delays(0)
            != RetryPolicy(attempts=5, seed=2).delays(0)
        )

    def test_different_call_index_different_jitter(self):
        policy = RetryPolicy(attempts=5, seed=7)
        assert policy.delays(0) != policy.delays(1)

    def test_exponential_shape_and_bounds(self):
        policy = RetryPolicy(
            attempts=6, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.4, jitter=0.5, seed=0,
        )
        delays = policy.delays(0)
        assert len(delays) == 5
        for i, delay in enumerate(delays):
            base = min(0.4, 0.1 * 2.0**i)
            assert base <= delay <= base * 1.5

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(attempts=1).delays(0) == []

    def test_validation(self):
        with pytest.raises(ClientError):
            RetryPolicy(attempts=0)
        with pytest.raises(ClientError):
            RetryPolicy(jitter=-1)


# ----------------------------------------------------------------------
# Circuit breaker state machine (fake clock, zero wall time)
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        knobs = {
            "window": 4, "min_samples": 2, "failure_threshold": 0.5,
            "open_for_s": 1.0, "half_open_probes": 1,
        }
        knobs.update(overrides)
        return CircuitBreaker(BreakerConfig(**knobs), clock), clock

    def test_closed_until_failure_rate_reached(self):
        breaker, _ = self.make()
        assert breaker.state == "closed"
        breaker.record_failure()  # 1 sample < min_samples: stays closed
        assert breaker.state == "closed"
        breaker.record_success()
        breaker.record_failure()  # 2/3 failures >= 0.5 with 3 samples
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert breaker.allow() is False

    def test_window_slides_old_outcomes_out(self):
        breaker, _ = self.make()
        breaker.record_failure()
        for _ in range(4):  # push the failure out of the window=4
            breaker.record_success()
        breaker.record_failure()  # 1/4 < 0.5: still closed
        assert breaker.state == "closed"

    def test_full_cycle_closed_open_half_open_closed(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 0.5
        assert breaker.state == "open"  # not yet
        clock.now += 0.6
        assert breaker.state == "half_open"
        assert breaker.allow() is True  # the probe
        assert breaker.allow() is False  # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed"
        # The window was reset: one failure alone cannot re-open.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 1.1
        assert breaker.allow() is True
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.now += 1.1  # a fresh open period from the re-open
        assert breaker.state == "half_open"

    def test_multiple_probe_slots(self):
        breaker, clock = self.make(half_open_probes=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 1.1
        assert breaker.allow() is True
        assert breaker.allow() is True
        assert breaker.allow() is False


# ----------------------------------------------------------------------
# End-to-end: failover, reconnect, hedging, exhaustion
# ----------------------------------------------------------------------


class TestResilientClientEndToEnd:
    def test_single_endpoint_drop_in(self, tmp_path, payload):
        async def scenario():
            async with one_server(tmp_path, "a") as server:
                client = ResilientClient(unix_path=server.config.unix_path)
                await client.connect()
                try:
                    response = await client.request({"op": "health"})
                    assert response["ok"] and response["status"] == "ok"
                    outcome = await client.call(color_body(payload))
                    assert outcome.ok and not outcome.retried
                    assert outcome.attempts == 1
                    assert outcome.latency_ms > 0
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_connect_failover_to_live_endpoint(self, tmp_path, payload):
        async def scenario():
            async with one_server(tmp_path, "b") as server:
                dead = Endpoint(unix_path=str(tmp_path / "nowhere.sock"))
                live = Endpoint(unix_path=server.config.unix_path)
                client = ResilientClient(
                    [dead, live], retry=RetryPolicy(attempts=3, base_delay_s=0.0)
                )
                await client.connect()
                try:
                    outcome = await client.call(color_body(payload))
                    assert outcome.ok
                    assert outcome.endpoint == live.label
                    states = client.endpoint_states()
                    assert states[dead.label]["failures"] >= 1
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_reconnects_after_reset(self, tmp_path, payload):
        async def scenario():
            async with one_server(tmp_path, "c") as server:
                client = ResilientClient(
                    unix_path=server.config.unix_path,
                    retry=RetryPolicy(attempts=2, base_delay_s=0.0),
                )
                await client.connect()
                try:
                    assert (await client.call(color_body(payload, seed=1))).ok
                    # Kill the transport under the client's feet.
                    state = next(iter(client.endpoint_states()))
                    connection = client._states[state].connection
                    connection._writer.transport.abort()
                    await asyncio.sleep(0.05)
                    assert connection.closed
                    outcome = await client.call(color_body(payload, seed=2))
                    assert outcome.ok
                    assert client.reconnects == 1
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_hedge_wins_on_slow_primary(self, tmp_path, payload):
        async def scenario():
            async with one_server(
                tmp_path, "slow", batch_runner=slow_runner, cache_size=0,
            ) as slow_server:
                async with one_server(tmp_path, "fast") as fast_server:
                    slow = Endpoint(unix_path=slow_server.config.unix_path)
                    fast = Endpoint(unix_path=fast_server.config.unix_path)
                    # The slow server is listed first, so (equal scores)
                    # it is the primary the hedge must rescue us from.
                    client = ResilientClient(
                        [slow, fast],
                        retry=RetryPolicy(attempts=1),
                        hedge_after_s=0.05,
                    )
                    await client.connect()
                    try:
                        outcome = await client.call(color_body(payload))
                        assert outcome.ok
                        assert outcome.hedged and outcome.hedge_won
                        assert outcome.endpoint == fast.label
                        assert client.hedges == 1 and client.hedge_wins == 1
                        # The fast answer, not the slow one.
                        assert outcome.body["result"]["colors"] == [0]
                    finally:
                        await client.close()

        asyncio.run(scenario())

    def test_timeout_then_unavailable(self, tmp_path, payload):
        async def scenario():
            async with one_server(
                tmp_path, "stall", batch_runner=slow_runner, cache_size=0,
            ) as server:
                client = ResilientClient(
                    unix_path=server.config.unix_path,
                    retry=RetryPolicy(attempts=1),
                    request_timeout_s=0.05,
                )
                await client.connect()
                try:
                    outcome = await client.call(color_body(payload))
                    assert not outcome.ok
                    assert outcome.body["error"]["code"] == "unavailable"
                    assert "timeout" in outcome.body["error"]["message"]
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_unreachable_everywhere_returns_unavailable(self, tmp_path):
        async def scenario():
            client = ResilientClient(
                unix_path=str(tmp_path / "void.sock"),
                retry=RetryPolicy(attempts=2, base_delay_s=0.0),
            )
            outcome = await client.call({"op": "health"})
            assert not outcome.ok
            assert outcome.body["error"]["code"] == "unavailable"
            assert outcome.endpoint is None
            await client.close()

        asyncio.run(scenario())

    def test_drain_is_never_retried_on_reset(self):
        retryable = ResilientClient._retryable
        assert retryable("drain", "reset", None) is False
        assert retryable("drain", "connect", None) is True
        assert retryable("color", "reset", None) is True
        assert retryable("color", "timeout", None) is True
        shed = {"ok": False, "error": {"code": "shed"}}
        assert retryable("color", None, shed) is True
        bad = {"ok": False, "error": {"code": "bad_request"}}
        assert retryable("color", None, bad) is False

    def test_probe_health_marks_draining(self, tmp_path, payload):
        async def scenario():
            async with one_server(tmp_path, "d1") as first:
                async with one_server(tmp_path, "d2") as second:
                    a = Endpoint(unix_path=first.config.unix_path)
                    b = Endpoint(unix_path=second.config.unix_path)
                    client = ResilientClient([a, b])
                    await client.connect()
                    try:
                        await client.request({"op": "drain"})
                        statuses = await client.probe_health()
                        drained = [
                            label for label, status in statuses.items()
                            if status == "draining"
                        ]
                        assert len(drained) == 1
                        # New work routes away from the draining endpoint.
                        outcome = await client.call(color_body(payload))
                        assert outcome.ok
                        assert outcome.endpoint not in drained
                    finally:
                        await client.close()

        asyncio.run(scenario())
