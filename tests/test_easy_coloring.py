"""Tests for Algorithm 3 (easy cliques and loopholes)."""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.constants import AlgorithmParameters
from repro.core import (
    Loophole,
    build_loophole_graph,
    classify_cliques,
    color_easy_and_loopholes,
)
from repro.core.hardness import Classification
from repro.errors import InvariantViolation
from repro.graphs import mixed_dense_graph
from repro.local import Network, RoundLedger
from repro.verify import verify_coloring

PARAMS = AlgorithmParameters(epsilon=0.25)


class TestLoopholeGraph:
    def test_disjoint_far_loopholes_unconnected(self):
        net = Network.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        loopholes = [Loophole((0,), "low-degree"), Loophole((4,), "low-degree")]
        virtual = build_loophole_graph(net, loopholes)
        assert virtual.edges() == []

    def test_adjacent_loopholes_connected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        loopholes = [Loophole((0,), "low-degree"), Loophole((1,), "low-degree")]
        virtual = build_loophole_graph(net, loopholes)
        assert virtual.edges() == [(0, 1)]

    def test_intersecting_loopholes_connected(self):
        net = Network.from_edges(
            5, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 1)]
        )
        loopholes = [
            Loophole((0, 1, 2, 3), "even-cycle"),
            Loophole((2,), "low-degree"),
        ]
        virtual = build_loophole_graph(net, loopholes)
        assert virtual.edges() == [(0, 1)]

    def test_duplicate_min_uids_disambiguated(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        loopholes = [
            Loophole((0, 1, 2, 3), "even-cycle"),
            Loophole((0,), "low-degree"),
        ]
        virtual = build_loophole_graph(net, loopholes)
        assert len(set(virtual.uids)) == 2


class TestEasyPhase:
    def test_colors_all_easy_vertices(self, mixed_instance, mixed_acd):
        classification = classify_cliques(mixed_instance.network, mixed_acd)
        colors: list[int | None] = [None] * mixed_instance.n
        # Pretend the hard phase ran: color hard vertices by a greedy
        # oracle restricted to hard cliques.
        from repro.baselines import greedy_brooks_coloring

        oracle = greedy_brooks_coloring(mixed_instance.network)
        for v in classification.hard_vertices():
            colors[v] = oracle[v]
        stats = color_easy_and_loopholes(
            mixed_instance.network, classification, colors,
            list(range(16)), params=PARAMS, ledger=RoundLedger(),
        )
        verify_coloring(mixed_instance.network, colors, 16)
        assert stats["loopholes"] == len(classification.easy)

    def test_nothing_to_do_when_all_colored(self, mixed_instance, mixed_acd):
        classification = classify_cliques(mixed_instance.network, mixed_acd)
        from repro.baselines import greedy_brooks_coloring

        colors = list(greedy_brooks_coloring(mixed_instance.network))
        stats = color_easy_and_loopholes(
            mixed_instance.network, classification, colors,
            list(range(16)), params=PARAMS,
        )
        assert stats == {"loopholes": 0, "selected": 0, "layers": 0}

    def test_missing_loopholes_raise(self, mixed_instance, mixed_acd):
        classification = Classification(
            acd=mixed_acd, hard=[], easy=[], reasons={}, loopholes={},
        )
        colors: list[int | None] = [None] * mixed_instance.n
        with pytest.raises(InvariantViolation, match="no loopholes"):
            color_easy_and_loopholes(
                mixed_instance.network, classification, colors,
                list(range(16)), params=PARAMS,
            )

    def test_colored_witness_vertex_raises(self, mixed_instance, mixed_acd):
        classification = classify_cliques(mixed_instance.network, mixed_acd)
        colors: list[int | None] = [None] * mixed_instance.n
        witness = next(iter(classification.loopholes.values()))
        colors[witness.vertices[0]] = 0
        with pytest.raises(InvariantViolation, match="propagation"):
            color_easy_and_loopholes(
                mixed_instance.network, classification, colors,
                list(range(16)), params=PARAMS,
            )

    def test_restrict_to_limits_scope(self):
        """Two disjoint easy regions; restricting colors only one."""
        instance = mixed_dense_graph(34, 16, easy_fraction=1.0, seed=5)
        acd = compute_acd(instance.network, epsilon=0.25)
        classification = classify_cliques(instance.network, acd)
        half = set()
        for index in classification.easy[:17]:
            half.update(acd.cliques[index])
        colors: list[int | None] = [None] * instance.n
        local = Classification(
            acd=acd,
            hard=[],
            easy=classification.easy[:17],
            reasons={},
            loopholes={
                index: classification.loopholes[index]
                for index in classification.easy[:17]
            },
        )
        color_easy_and_loopholes(
            instance.network, local, colors, list(range(16)),
            params=PARAMS, restrict_to=sorted(half),
        )
        assert all(colors[v] is not None for v in half)
        assert all(
            colors[v] is None for v in range(instance.n) if v not in half
        )

    def test_all_easy_instance_end_to_end(self):
        instance = mixed_dense_graph(34, 16, easy_fraction=1.0, seed=6)
        acd = compute_acd(instance.network, epsilon=0.25)
        classification = classify_cliques(instance.network, acd)
        colors: list[int | None] = [None] * instance.n
        color_easy_and_loopholes(
            instance.network, classification, colors, list(range(16)),
            params=PARAMS,
        )
        verify_coloring(instance.network, colors, 16)
