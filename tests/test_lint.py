"""Tests for repro.lint: rules, pragmas, baseline, CLI, and the
meta-invariant that the shipped sources are clean.

The fixture files under ``tests/fixtures/lint/`` are one-violation
snippets: each must yield *exactly* its expected rule ids, which pins
both detection (the rule fires) and precision (nothing else does).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.lint import (
    ALL_RULES,
    Baseline,
    BaselineError,
    RULES_BY_ID,
    load_sarif_schema,
    parse_pragmas,
    render_github,
    render_json,
    render_sarif,
    render_text,
    run_lint,
    sarif_document,
    select_rules,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).parent.parent / "src"

ALL_RULE_IDS = sorted(RULES_BY_ID)


def lint_rules(path, *, congest=True, baseline=None):
    """Lint one path with every family enabled; return sorted rule ids."""
    report = run_lint([path], rules=select_rules(congest=congest), baseline=baseline)
    return sorted(finding.rule for finding in report.new)


# ----------------------------------------------------------------------
# Fixture snippets: one expected finding each
# ----------------------------------------------------------------------

EXPECTED_FINDINGS = {
    "loc001_global_read.py": ["LOC001"],
    "loc002_engine_internals.py": ["LOC002"],
    "loc003_network_capture.py": ["LOC003"],
    "det001_global_random.py": ["DET001"],
    "det002_set_iteration.py": ["DET002"],
    "det003_wall_clock.py": ["DET003"],
    "det004_os_entropy.py": ["DET004"],
    "det005_string_hash.py": ["DET005"],
    "led001_discarded_run.py": ["LED001"],
    "led001_discarded_columnar_run.py": ["LED001"],
    "led002_unaccounted_run.py": ["LED002"],
    "msg001_wide_payload.py": ["MSG001"],
    "msg001_named_payload.py": ["MSG001"],
    "asy001_blocking_call.py": ["ASY001"] * 4,
    "asy002_unawaited_coroutine.py": ["ASY002"] * 2,
    "asy003_fire_and_forget_task.py": ["ASY003"] * 2,
    "asy004_await_under_sync_lock.py": ["ASY004"],
    "prv001_underived_seed.py": ["PRV001"] * 3,
    "prv002_shared_rng.py": ["PRV002"] * 2,
}


@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED_FINDINGS.items()))
def test_bad_fixture_yields_exactly_expected_rule(fixture, expected):
    assert lint_rules(FIXTURES / fixture) == expected


def test_every_rule_family_has_a_fixture():
    covered = {rule for rules in EXPECTED_FINDINGS.values() for rule in rules}
    assert covered == set(ALL_RULE_IDS)


def test_clean_fixture_has_no_findings():
    assert lint_rules(FIXTURES / "clean_module.py") == []


def test_columnar_kernel_idioms_are_clean():
    """The vectorized-kernel fixture (struct-of-arrays buffers, stable
    argsort bucketing, set membership probes) must produce no findings —
    array code is ordered and DET002 has no business firing on it."""
    assert lint_rules(FIXTURES / "clean_columnar_kernel.py") == []


def test_clean_async_fixture_has_no_findings():
    """Idiomatic asyncio — run_in_executor, stored task handles,
    async-with locks, wrap_future — must pass every ASY rule."""
    assert lint_rules(FIXTURES / "clean_async_module.py") == []


def test_clean_provenance_fixture_has_no_findings():
    """All sanctioned seed idioms — derive_cell_seed, threaded
    parameters, plan attributes, arithmetic over derived values, the
    None-default fallback — must pass both PRV rules."""
    assert lint_rules(FIXTURES / "clean_provenance.py") == []


def test_fixture_directory_is_fully_accounted():
    names = {path.name for path in FIXTURES.glob("*.py")}
    assert set(EXPECTED_FINDINGS) <= names


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def test_pragma_fixture_suppresses_everything():
    report = run_lint([FIXTURES / "pragma_exempt.py"], rules=select_rules(congest=True))
    assert report.new == []
    assert sorted(f.rule for f in report.suppressed) == ["DET002", "DET003", "MSG001"]


def test_pragma_is_rule_scoped():
    pragmas = parse_pragmas("x = 1  # repro: lint-exempt[DET003]\n")
    assert pragmas == {1: frozenset({"DET003"})}


def test_pragma_comma_list_and_congest_shorthand():
    source = (
        "a = 1  # repro: lint-exempt[DET002, LOC001]\n"
        "b = 2  # repro: congest-exempt\n"
    )
    pragmas = parse_pragmas(source)
    assert pragmas[1] == frozenset({"DET002", "LOC001"})
    assert pragmas[2] == frozenset({"MSG001"})


def test_comment_only_pragma_covers_next_code_line():
    source = "# repro: lint-exempt[DET005]\n\nvalue = hash('x')\n"
    pragmas = parse_pragmas(source)
    assert "DET005" in pragmas[1]
    assert "DET005" in pragmas[3]


def test_pragma_does_not_hide_other_rules(tmp_path):
    bad = tmp_path / "wrong_pragma.py"
    bad.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: lint-exempt[DET001]\n"
    )
    assert lint_rules(bad) == ["DET003"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    fixture = FIXTURES / "det003_wall_clock.py"
    first = run_lint([fixture])
    assert [f.rule for f in first.new] == ["DET003"]

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.new).save(baseline_path)

    second = run_lint([fixture], baseline=Baseline.load(baseline_path))
    assert second.ok
    assert [f.rule for f in second.baselined] == ["DET003"]
    assert second.stale_baseline == []


def test_baseline_reports_stale_entries(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({
        "version": 1,
        "entries": [
            {"path": "gone.py", "rule": "DET003",
             "line_text": "return time.time()", "count": 1},
        ],
    }))
    report = run_lint(
        [FIXTURES / "clean_module.py"], baseline=Baseline.load(baseline_path)
    )
    assert report.ok
    assert report.stale_baseline == [("gone.py", "DET003", "return time.time()")]


def test_baseline_counts_consume_per_finding(tmp_path):
    bad = tmp_path / "twice.py"
    bad.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time(), time.time()\n"
    )
    report = run_lint([bad])
    assert len(report.new) == 2
    baseline = Baseline.from_findings(report.new)
    key = report.new[0].fingerprint()
    assert baseline.counts[key] == 2

    # A baseline admitting only one occurrence leaves the second new.
    baseline.counts[key] = 1
    partial = run_lint([bad], baseline=baseline)
    assert len(partial.new) == 1
    assert len(partial.baselined) == 1


def test_baseline_rejects_bad_documents(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_baseline_survives_line_shifts(tmp_path):
    bad = tmp_path / "shifty.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = Baseline.from_findings(run_lint([bad]).new)
    # Insert lines above the finding: the fingerprint still matches.
    bad.write_text(
        "import time\n\nPAD = 1\nMORE = 2\n\ndef f():\n    return time.time()\n"
    )
    assert run_lint([bad], baseline=baseline).ok


def test_baseline_rename_surfaces_finding_and_stale_entry(tmp_path):
    # The fingerprint includes the path, so a rename must NOT silently
    # keep the grandfathering: the finding resurfaces as new at its new
    # path and the old entry is reported stale — never a quiet pass.
    bad = tmp_path / "old_name.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = Baseline.from_findings(run_lint([bad]).new)
    renamed = tmp_path / "new_name.py"
    bad.rename(renamed)
    report = run_lint([renamed], baseline=baseline)
    assert [f.rule for f in report.new] == ["DET003"]
    assert [entry[1] for entry in report.stale_baseline] == ["DET003"]
    assert "old_name.py" in report.stale_baseline[0][0]


def test_update_baseline_never_resurrects_stale_entries(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    bad = tmp_path / "snippet.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert main(["lint", str(bad), "--baseline", str(baseline_path),
                 "--update-baseline"]) == 0
    assert len(Baseline.load(baseline_path).counts) == 1
    # Fix the finding, then regenerate: the stale entry must vanish
    # rather than ride along forever (or come back on a later update).
    bad.write_text("def f():\n    return 0\n")
    assert main(["lint", str(bad), "--baseline", str(baseline_path),
                 "--update-baseline"]) == 0
    assert Baseline.load(baseline_path).counts == {}
    assert main(["lint", str(bad), "--baseline", str(baseline_path),
                 "--update-baseline"]) == 0
    assert Baseline.load(baseline_path).counts == {}


# ----------------------------------------------------------------------
# Rule selection and scoping
# ----------------------------------------------------------------------


def test_default_rules_include_every_family():
    # MSG001 is default-on since its promotion — it scopes itself to
    # core/ + subroutines/ via applies() rather than staying opt-in.
    default_ids = {rule.rule_id for rule in select_rules()}
    assert {
        "LOC001", "DET002", "LED001", "MSG001", "ASY001", "PRV001",
    } <= default_ids


def test_select_asy_and_prv_families():
    asy = select_rules(["ASY"])
    assert sorted(rule.rule_id for rule in asy) == [
        "ASY001", "ASY002", "ASY003", "ASY004",
    ]
    prv = select_rules(["PRV"])
    assert sorted(rule.rule_id for rule in prv) == ["PRV001", "PRV002"]


def test_select_by_family_prefix():
    det = select_rules(["DET"])
    assert sorted(rule.rule_id for rule in det) == [
        "DET001", "DET002", "DET003", "DET004", "DET005",
    ]


def test_select_unknown_rule_raises():
    with pytest.raises(ReproError, match="unknown lint rule"):
        select_rules(["NOPE999"])


def test_determinism_rules_skip_obs_package():
    # repro/obs/spans.py reads the wall clock by design; the DET family
    # must scope itself out of the observability layer.
    report = run_lint(
        [REPO_SRC / "repro" / "obs" / "spans.py"], rules=select_rules(["DET"])
    )
    assert report.ok


def test_determinism_rules_skip_serve_package(tmp_path):
    # The serving layer measures wall-clock latency by design.  The
    # scope-out is path-based, so the same nondeterministic module must
    # lint clean under repro/serve and dirty under repro/core.
    source = "import time\n\n\ndef now() -> float:\n    return time.time()\n"
    serve_mod = tmp_path / "src" / "repro" / "serve" / "timing.py"
    core_mod = tmp_path / "src" / "repro" / "core" / "timing.py"
    for module in (serve_mod, core_mod):
        module.parent.mkdir(parents=True)
        module.write_text(source)
    assert run_lint([serve_mod], rules=select_rules(["DET"])).ok
    dirty = run_lint([core_mod], rules=select_rules(["DET"]))
    assert not dirty.ok
    assert any(f.rule.startswith("DET") for f in dirty.new)


def test_real_serve_sources_are_determinism_exempt():
    report = run_lint(
        [REPO_SRC / "repro" / "serve"], rules=select_rules(["DET"])
    )
    assert report.ok


def test_msg001_scopes_to_congest_perimeter(tmp_path):
    # The same wide-payload algorithm is a finding under
    # repro/subroutines (inside the CONGEST perimeter) and silent under
    # repro/serve (outside it) — per-family scoping, not per-module.
    source = (
        "from repro.local.algorithm import DistributedAlgorithm\n\n\n"
        "class Dump(DistributedAlgorithm):\n"
        "    def on_round(self, node, api, inbox):\n"
        "        api.broadcast([m for _, m in inbox])\n"
    )
    inside = tmp_path / "src" / "repro" / "subroutines" / "dump.py"
    outside = tmp_path / "src" / "repro" / "serve" / "dump.py"
    for module in (inside, outside):
        module.parent.mkdir(parents=True)
        module.write_text(source)
    flagged = run_lint([inside], rules=select_rules())
    assert [f.rule for f in flagged.new] == ["MSG001"]
    assert run_lint([outside], rules=select_rules()).ok


def test_prv_rules_claw_back_determinism_exempt_serve(tmp_path):
    # serve/ is DET-exempt, but an underived RNG seed there is still a
    # PRV001 finding: provenance scope covers the exempted packages.
    source = (
        "import random\n\n\n"
        "def backoff_rng():\n"
        "    return random.Random(1234)\n"
    )
    serve_mod = tmp_path / "src" / "repro" / "serve" / "retry.py"
    serve_mod.parent.mkdir(parents=True)
    serve_mod.write_text(source)
    report = run_lint([serve_mod], rules=select_rules())
    assert [f.rule for f in report.new] == ["PRV001"]
    # ...while the DET family alone stays silent there.
    assert run_lint([serve_mod], rules=select_rules(["DET"])).ok


def test_engine_module_exempt_from_ledger_rules():
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "network.py"],
        rules=select_rules(["LED"]),
    )
    assert report.ok


def test_columnar_kernel_is_an_engine_module():
    """The columnar kernel produces RunResults; like the other engine
    modules it is exempt from the ledger rules — but only via the
    precise ENGINE_MODULES list, never a blanket package exemption."""
    from repro.lint.source import ENGINE_MODULES

    assert "local/columnar.py" in ENGINE_MODULES
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "columnar.py"],
        rules=select_rules(["LED"]),
    )
    assert report.ok


def test_columnar_source_is_fully_clean():
    """The real kernel passes every rule family with no exemptions —
    its array code must not need pragmas to satisfy DET002."""
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "columnar.py"],
        rules=select_rules(congest=True),
    )
    assert report.ok
    assert report.suppressed == []


# ----------------------------------------------------------------------
# Determinism-rule precision (no false positives on sanctioned shapes)
# ----------------------------------------------------------------------


def check_snippet(tmp_path, source, *, congest=False):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_rules(path, congest=congest)


def test_sorted_iteration_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(vertices):\n"
        "    chosen = {str(v) for v in vertices}\n"
        "    return [c for c in sorted(chosen)]\n",
    ) == []


def test_int_annotated_set_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(vertices: set[int]):\n"
        "    return [v * 2 for v in vertices]\n",
    ) == []


def test_set_of_range_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f():\n"
        "    classes = set(range(16))\n"
        "    out = []\n"
        "    for c in classes:\n"
        "        out.append(c)\n"
        "    return out\n",
    ) == []


def test_order_free_consumers_are_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(words):\n"
        "    bag = {str(w) for w in words}\n"
        "    return sum(len(w) for w in bag), max(len(w) for w in bag)\n",
    ) == []


def test_set_intersection_propagates_kind(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(names):\n"
        "    left = {str(n) for n in names}\n"
        "    right = left | set()\n"
        "    return [n for n in right]\n",
    ) == ["DET002"]


def test_array_code_does_not_mask_set_iteration(tmp_path):
    """Numpy idioms alongside a genuine unordered-set iteration: the
    array code must stay clean while the true positive still fires —
    there is no vectorized-code carve-out for DET002."""
    assert check_snippet(
        tmp_path,
        "import numpy as np\n"
        "def deliver(dst, labels):\n"
        "    order = np.argsort(dst, kind='stable')\n"
        "    tags = {str(label) for label in labels}\n"
        "    return [t for t in tags], dst[order]\n",
    ) == ["DET002"]


def test_dict_iteration_is_not_flagged(tmp_path):
    # CPython dicts preserve insertion order (language guarantee since
    # 3.7) — only set iteration is hash-ordered.
    assert check_snippet(
        tmp_path,
        "def f(table):\n"
        "    out = []\n"
        "    for key in table:\n"
        "        out.append(key)\n"
        "    return out\n",
    ) == []


def test_seeded_random_instance_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "import random\n\n"
        "def f(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.randrange(10)\n",
    ) == []


def test_from_random_import_flagged(tmp_path):
    assert check_snippet(
        tmp_path, "from random import shuffle\n"
    ) == ["DET001"]


def test_hash_in_dunder_hash_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "class Key:\n"
        "    def __init__(self, parts):\n"
        "        self.parts = parts\n"
        "    def __hash__(self):\n"
        "        return hash(self.parts)\n",
    ) == []


# ----------------------------------------------------------------------
# Ledger-rule escape hatches
# ----------------------------------------------------------------------


def test_run_inside_charging_span_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "from repro.obs.spans import span\n\n"
        "def f(network, algorithm, ledger):\n"
        "    with span('phase', ledger=ledger):\n"
        "        result = network.run(algorithm)\n"
        "        ledger.charge_result('phase', result)\n"
        "    return result.outputs\n",
    ) == []


def test_run_returned_to_caller_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm):\n"
        "    result = network.run(algorithm)\n"
        "    return [1], result\n",
    ) == []


def test_run_forwarded_to_callee_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm, sink):\n"
        "    result = network.run(algorithm)\n"
        "    sink.consume(result)\n"
        "    return None\n",
    ) == []


def test_rounds_read_counts_as_accounted(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm):\n"
        "    result = network.run(algorithm)\n"
        "    return result.rounds + 1\n",
    ) == []


def test_zero_argument_run_is_ignored(tmp_path):
    # `.run()` of unrelated APIs (e.g. a test runner) is not an engine
    # execution; the rule keys on the algorithm argument.
    assert check_snippet(
        tmp_path,
        "def f(app):\n"
        "    app.run()\n",
    ) == []


# ----------------------------------------------------------------------
# Engine robustness + output formats
# ----------------------------------------------------------------------


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = run_lint([bad])
    assert [f.rule for f in report.new] == ["LNT001"]


def test_missing_path_raises(tmp_path):
    with pytest.raises(ReproError, match="does not exist"):
        run_lint([tmp_path / "missing.py"])


def test_text_output_lists_findings_and_summary():
    report = run_lint([FIXTURES / "det003_wall_clock.py"])
    text = render_text(report)
    assert "DET003" in text
    assert "1 new finding(s)" in text


def test_json_output_shape():
    report = run_lint([FIXTURES / "det005_string_hash.py"])
    document = json.loads(render_json(report))
    assert document["summary"]["new"] == 1
    (finding,) = document["findings"]
    assert finding["rule"] == "DET005"
    assert finding["line"] > 0
    assert set(document["rules"]) == set(ALL_RULE_IDS)


def test_github_output_is_annotation_commands():
    report = run_lint([FIXTURES / "det004_os_entropy.py"])
    lines = render_github(report).splitlines()
    assert lines[0].startswith("::error file=")
    assert "DET004" in lines[0]
    assert lines[-1].startswith("::notice::repro lint:")


def test_github_output_escapes_newlines_and_commas(tmp_path):
    report = run_lint([FIXTURES / "det004_os_entropy.py"])
    for line in render_github(report).splitlines():
        properties = line.split("::")[1]
        assert "\n" not in line
        # Property values must escape commas/colons they contain.
        if "file=" in properties:
            for assignment in properties.split(",")[1:]:
                assert "=" in assignment


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------


def test_sarif_document_validates_against_schema():
    """The emitted SARIF must satisfy the checked-in subset schema —
    same dependency-free validator the telemetry document uses."""
    from repro.obs.schema import schema_errors

    report = run_lint([FIXTURES / "det003_wall_clock.py"])
    document = sarif_document(report)
    assert schema_errors(document, load_sarif_schema()) == []
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "DET003"
    assert result["baselineState"] == "new"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("det003_wall_clock.py")
    assert location["region"]["startLine"] >= 1


def test_sarif_rule_catalog_is_complete():
    report = run_lint([FIXTURES / "clean_module.py"])
    document = sarif_document(report)
    descriptors = document["runs"][0]["tool"]["driver"]["rules"]
    assert {d["id"] for d in descriptors} == set(ALL_RULE_IDS)
    for descriptor in descriptors:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in (
            "error", "warning",
        )


def test_sarif_marks_baselined_findings_unchanged():
    fixture = FIXTURES / "det003_wall_clock.py"
    baseline = Baseline.from_findings(run_lint([fixture]).new)
    document = sarif_document(run_lint([fixture], baseline=baseline))
    (result,) = document["runs"][0]["results"]
    assert result["baselineState"] == "unchanged"
    assert "reproLintFingerprint/v1" in result["partialFingerprints"]


def test_render_sarif_is_valid_json_with_stable_keys():
    report = run_lint([FIXTURES / "det005_string_hash.py"])
    text = render_sarif(report)
    assert json.loads(text)["runs"][0]["results"][0]["ruleId"] == "DET005"
    # sort_keys: byte-stable output for artifact diffing.
    assert text == render_sarif(report)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean(capsys):
    assert main(["lint", str(FIXTURES / "clean_module.py"), "--no-baseline"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_findings(capsys):
    code = main(["lint", str(FIXTURES / "det001_global_random.py"), "--no-baseline"])
    assert code == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_json_flag(capsys):
    main(["lint", str(FIXTURES / "det001_global_random.py"), "--json",
          "--no-baseline"])
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["new"] == 1


def test_cli_github_flag(capsys):
    code = main(["lint", str(FIXTURES / "loc002_engine_internals.py"),
                 "--github", "--no-baseline"])
    assert code == 1
    assert "::error file=" in capsys.readouterr().out


def test_cli_flags_wide_payload_by_default(capsys):
    # MSG001 promotion: fixture files (full-strength scope) fire with
    # no --congest flag; the flag stays accepted for back-compat.
    flagged = main(["lint", str(FIXTURES / "msg001_wide_payload.py"),
                    "--no-baseline"])
    assert flagged == 1
    assert "MSG001" in capsys.readouterr().out
    still_flagged = main(["lint", str(FIXTURES / "msg001_wide_payload.py"),
                          "--congest", "--no-baseline"])
    assert still_flagged == 1


def test_cli_sarif_flag(capsys):
    code = main(["lint", str(FIXTURES / "det001_global_random.py"),
                 "--sarif", "--no-baseline"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"][0]["ruleId"] == "DET001"


def test_cli_select_flag(capsys):
    # Selecting only LED on a DET-violating file: clean.
    code = main(["lint", str(FIXTURES / "det001_global_random.py"),
                 "--select", "LED", "--no-baseline"])
    assert code == 0


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "det002_set_iteration.py")
    assert main(["lint", fixture, "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert baseline.exists()
    assert main(["lint", fixture, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_unknown_rule_is_error(capsys):
    code = main(["lint", str(FIXTURES / "clean_module.py"),
                 "--select", "BOGUS", "--no-baseline"])
    assert code == 1
    assert "unknown lint rule" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Meta: the shipped tree is clean, and core is clean *without* grace
# ----------------------------------------------------------------------


def test_repro_sources_are_lint_clean():
    """`repro lint src/` against the committed (empty) baseline."""
    baseline_path = Path(__file__).parent.parent / "lint-baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
    report = run_lint([REPO_SRC], baseline=baseline)
    assert report.ok, "\n" + render_text(report)


def test_core_has_no_lint_exemptions():
    """src/repro/core/ must be *fixed*, not pragma'd or baselined."""
    core = REPO_SRC / "repro" / "core"
    for path in sorted(core.rglob("*.py")):
        assert "lint-exempt" not in path.read_text(), (
            f"{path} carries a lint-exempt pragma; core findings must be fixed"
        )
    baseline_path = Path(__file__).parent.parent / "lint-baseline.json"
    if baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        core_entries = [
            key for key in baseline.counts if "repro/core/" in key[0]
        ]
        assert core_entries == []


def test_congest_perimeter_is_bandwidth_clean():
    """MSG001 is default-on across core/ + subroutines/: zero findings,
    and zero *unexplained* exemptions — every congest-exempt pragma in
    the perimeter must carry a `--` justification naming the width."""
    perimeter = [
        REPO_SRC / "repro" / "core",
        REPO_SRC / "repro" / "subroutines",
    ]
    report = run_lint(perimeter, rules=select_rules(["MSG"]))
    assert report.ok, "\n" + render_text(report)
    for root in perimeter:
        for path in sorted(root.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), 1):
                if "congest-exempt" in line:
                    tail = line.split("congest-exempt", 1)[1]
                    assert "--" in tail, (
                        f"{path}:{number}: congest-exempt pragma without a "
                        "justification ('-- <why this width is acceptable>')"
                    )


def test_serve_sources_pass_async_and_provenance_rules():
    """The serving plane is the code the ASY/PRV families exist for —
    it must pass them with no pragmas and no baseline grace."""
    report = run_lint(
        [REPO_SRC / "repro" / "serve"], rules=select_rules(["ASY", "PRV"])
    )
    assert report.ok, "\n" + render_text(report)
    assert report.suppressed == []


def test_tools_tree_is_clean_against_its_baseline(monkeypatch):
    """benchmarks/ + scripts/ lint clean against the committed tools
    baseline, with no stale entries riding along.  Fingerprints are
    repo-relative, so lint from the repo root like CI does."""
    repo = Path(__file__).parent.parent
    monkeypatch.chdir(repo)
    baseline = Baseline.load(repo / "lint-baseline-tools.json")
    report = run_lint(["benchmarks", "scripts"], baseline=baseline)
    assert report.ok, "\n" + render_text(report)
    assert report.stale_baseline == []


def test_rule_ids_are_unique_and_stable():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    for rule in ALL_RULES:
        assert rule.severity in ("error", "warning")
        assert rule.title
