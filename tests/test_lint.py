"""Tests for repro.lint: rules, pragmas, baseline, CLI, and the
meta-invariant that the shipped sources are clean.

The fixture files under ``tests/fixtures/lint/`` are one-violation
snippets: each must yield *exactly* its expected rule ids, which pins
both detection (the rule fires) and precision (nothing else does).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.lint import (
    ALL_RULES,
    Baseline,
    BaselineError,
    RULES_BY_ID,
    parse_pragmas,
    render_github,
    render_json,
    render_text,
    run_lint,
    select_rules,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).parent.parent / "src"

ALL_RULE_IDS = sorted(RULES_BY_ID)


def lint_rules(path, *, congest=True, baseline=None):
    """Lint one path with every family enabled; return sorted rule ids."""
    report = run_lint([path], rules=select_rules(congest=congest), baseline=baseline)
    return sorted(finding.rule for finding in report.new)


# ----------------------------------------------------------------------
# Fixture snippets: one expected finding each
# ----------------------------------------------------------------------

EXPECTED_FINDINGS = {
    "loc001_global_read.py": ["LOC001"],
    "loc002_engine_internals.py": ["LOC002"],
    "loc003_network_capture.py": ["LOC003"],
    "det001_global_random.py": ["DET001"],
    "det002_set_iteration.py": ["DET002"],
    "det003_wall_clock.py": ["DET003"],
    "det004_os_entropy.py": ["DET004"],
    "det005_string_hash.py": ["DET005"],
    "led001_discarded_run.py": ["LED001"],
    "led001_discarded_columnar_run.py": ["LED001"],
    "led002_unaccounted_run.py": ["LED002"],
    "msg001_wide_payload.py": ["MSG001"],
}


@pytest.mark.parametrize("fixture,expected", sorted(EXPECTED_FINDINGS.items()))
def test_bad_fixture_yields_exactly_expected_rule(fixture, expected):
    assert lint_rules(FIXTURES / fixture) == expected


def test_every_rule_family_has_a_fixture():
    covered = {rule for rules in EXPECTED_FINDINGS.values() for rule in rules}
    assert covered == set(ALL_RULE_IDS)


def test_clean_fixture_has_no_findings():
    assert lint_rules(FIXTURES / "clean_module.py") == []


def test_columnar_kernel_idioms_are_clean():
    """The vectorized-kernel fixture (struct-of-arrays buffers, stable
    argsort bucketing, set membership probes) must produce no findings —
    array code is ordered and DET002 has no business firing on it."""
    assert lint_rules(FIXTURES / "clean_columnar_kernel.py") == []


def test_fixture_directory_is_fully_accounted():
    names = {path.name for path in FIXTURES.glob("*.py")}
    assert set(EXPECTED_FINDINGS) <= names


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def test_pragma_fixture_suppresses_everything():
    report = run_lint([FIXTURES / "pragma_exempt.py"], rules=select_rules(congest=True))
    assert report.new == []
    assert sorted(f.rule for f in report.suppressed) == ["DET002", "DET003", "MSG001"]


def test_pragma_is_rule_scoped():
    pragmas = parse_pragmas("x = 1  # repro: lint-exempt[DET003]\n")
    assert pragmas == {1: frozenset({"DET003"})}


def test_pragma_comma_list_and_congest_shorthand():
    source = (
        "a = 1  # repro: lint-exempt[DET002, LOC001]\n"
        "b = 2  # repro: congest-exempt\n"
    )
    pragmas = parse_pragmas(source)
    assert pragmas[1] == frozenset({"DET002", "LOC001"})
    assert pragmas[2] == frozenset({"MSG001"})


def test_comment_only_pragma_covers_next_code_line():
    source = "# repro: lint-exempt[DET005]\n\nvalue = hash('x')\n"
    pragmas = parse_pragmas(source)
    assert "DET005" in pragmas[1]
    assert "DET005" in pragmas[3]


def test_pragma_does_not_hide_other_rules(tmp_path):
    bad = tmp_path / "wrong_pragma.py"
    bad.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time()  # repro: lint-exempt[DET001]\n"
    )
    assert lint_rules(bad) == ["DET003"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    fixture = FIXTURES / "det003_wall_clock.py"
    first = run_lint([fixture])
    assert [f.rule for f in first.new] == ["DET003"]

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.new).save(baseline_path)

    second = run_lint([fixture], baseline=Baseline.load(baseline_path))
    assert second.ok
    assert [f.rule for f in second.baselined] == ["DET003"]
    assert second.stale_baseline == []


def test_baseline_reports_stale_entries(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({
        "version": 1,
        "entries": [
            {"path": "gone.py", "rule": "DET003",
             "line_text": "return time.time()", "count": 1},
        ],
    }))
    report = run_lint(
        [FIXTURES / "clean_module.py"], baseline=Baseline.load(baseline_path)
    )
    assert report.ok
    assert report.stale_baseline == [("gone.py", "DET003", "return time.time()")]


def test_baseline_counts_consume_per_finding(tmp_path):
    bad = tmp_path / "twice.py"
    bad.write_text(
        "import time\n\n"
        "def f():\n"
        "    return time.time(), time.time()\n"
    )
    report = run_lint([bad])
    assert len(report.new) == 2
    baseline = Baseline.from_findings(report.new)
    key = report.new[0].fingerprint()
    assert baseline.counts[key] == 2

    # A baseline admitting only one occurrence leaves the second new.
    baseline.counts[key] = 1
    partial = run_lint([bad], baseline=baseline)
    assert len(partial.new) == 1
    assert len(partial.baselined) == 1


def test_baseline_rejects_bad_documents(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        Baseline.load(path)
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_baseline_survives_line_shifts(tmp_path):
    bad = tmp_path / "shifty.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    baseline = Baseline.from_findings(run_lint([bad]).new)
    # Insert lines above the finding: the fingerprint still matches.
    bad.write_text(
        "import time\n\nPAD = 1\nMORE = 2\n\ndef f():\n    return time.time()\n"
    )
    assert run_lint([bad], baseline=baseline).ok


# ----------------------------------------------------------------------
# Rule selection and scoping
# ----------------------------------------------------------------------


def test_default_rules_exclude_congest_family():
    default_ids = {rule.rule_id for rule in select_rules()}
    assert "MSG001" not in default_ids
    assert {"LOC001", "DET002", "LED001"} <= default_ids


def test_select_by_family_prefix():
    det = select_rules(["DET"])
    assert sorted(rule.rule_id for rule in det) == [
        "DET001", "DET002", "DET003", "DET004", "DET005",
    ]


def test_select_unknown_rule_raises():
    with pytest.raises(ReproError, match="unknown lint rule"):
        select_rules(["NOPE999"])


def test_determinism_rules_skip_obs_package():
    # repro/obs/spans.py reads the wall clock by design; the DET family
    # must scope itself out of the observability layer.
    report = run_lint(
        [REPO_SRC / "repro" / "obs" / "spans.py"], rules=select_rules(["DET"])
    )
    assert report.ok


def test_determinism_rules_skip_serve_package(tmp_path):
    # The serving layer measures wall-clock latency by design.  The
    # scope-out is path-based, so the same nondeterministic module must
    # lint clean under repro/serve and dirty under repro/core.
    source = "import time\n\n\ndef now() -> float:\n    return time.time()\n"
    serve_mod = tmp_path / "src" / "repro" / "serve" / "timing.py"
    core_mod = tmp_path / "src" / "repro" / "core" / "timing.py"
    for module in (serve_mod, core_mod):
        module.parent.mkdir(parents=True)
        module.write_text(source)
    assert run_lint([serve_mod], rules=select_rules(["DET"])).ok
    dirty = run_lint([core_mod], rules=select_rules(["DET"]))
    assert not dirty.ok
    assert any(f.rule.startswith("DET") for f in dirty.new)


def test_real_serve_sources_are_determinism_exempt():
    report = run_lint(
        [REPO_SRC / "repro" / "serve"], rules=select_rules(["DET"])
    )
    assert report.ok


def test_engine_module_exempt_from_ledger_rules():
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "network.py"],
        rules=select_rules(["LED"]),
    )
    assert report.ok


def test_columnar_kernel_is_an_engine_module():
    """The columnar kernel produces RunResults; like the other engine
    modules it is exempt from the ledger rules — but only via the
    precise ENGINE_MODULES list, never a blanket package exemption."""
    from repro.lint.source import ENGINE_MODULES

    assert "local/columnar.py" in ENGINE_MODULES
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "columnar.py"],
        rules=select_rules(["LED"]),
    )
    assert report.ok


def test_columnar_source_is_fully_clean():
    """The real kernel passes every rule family with no exemptions —
    its array code must not need pragmas to satisfy DET002."""
    report = run_lint(
        [REPO_SRC / "repro" / "local" / "columnar.py"],
        rules=select_rules(congest=True),
    )
    assert report.ok
    assert report.suppressed == []


# ----------------------------------------------------------------------
# Determinism-rule precision (no false positives on sanctioned shapes)
# ----------------------------------------------------------------------


def check_snippet(tmp_path, source, *, congest=False):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_rules(path, congest=congest)


def test_sorted_iteration_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(vertices):\n"
        "    chosen = {str(v) for v in vertices}\n"
        "    return [c for c in sorted(chosen)]\n",
    ) == []


def test_int_annotated_set_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(vertices: set[int]):\n"
        "    return [v * 2 for v in vertices]\n",
    ) == []


def test_set_of_range_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f():\n"
        "    classes = set(range(16))\n"
        "    out = []\n"
        "    for c in classes:\n"
        "        out.append(c)\n"
        "    return out\n",
    ) == []


def test_order_free_consumers_are_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(words):\n"
        "    bag = {str(w) for w in words}\n"
        "    return sum(len(w) for w in bag), max(len(w) for w in bag)\n",
    ) == []


def test_set_intersection_propagates_kind(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(names):\n"
        "    left = {str(n) for n in names}\n"
        "    right = left | set()\n"
        "    return [n for n in right]\n",
    ) == ["DET002"]


def test_array_code_does_not_mask_set_iteration(tmp_path):
    """Numpy idioms alongside a genuine unordered-set iteration: the
    array code must stay clean while the true positive still fires —
    there is no vectorized-code carve-out for DET002."""
    assert check_snippet(
        tmp_path,
        "import numpy as np\n"
        "def deliver(dst, labels):\n"
        "    order = np.argsort(dst, kind='stable')\n"
        "    tags = {str(label) for label in labels}\n"
        "    return [t for t in tags], dst[order]\n",
    ) == ["DET002"]


def test_dict_iteration_is_not_flagged(tmp_path):
    # CPython dicts preserve insertion order (language guarantee since
    # 3.7) — only set iteration is hash-ordered.
    assert check_snippet(
        tmp_path,
        "def f(table):\n"
        "    out = []\n"
        "    for key in table:\n"
        "        out.append(key)\n"
        "    return out\n",
    ) == []


def test_seeded_random_instance_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "import random\n\n"
        "def f(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.randrange(10)\n",
    ) == []


def test_from_random_import_flagged(tmp_path):
    assert check_snippet(
        tmp_path, "from random import shuffle\n"
    ) == ["DET001"]


def test_hash_in_dunder_hash_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "class Key:\n"
        "    def __init__(self, parts):\n"
        "        self.parts = parts\n"
        "    def __hash__(self):\n"
        "        return hash(self.parts)\n",
    ) == []


# ----------------------------------------------------------------------
# Ledger-rule escape hatches
# ----------------------------------------------------------------------


def test_run_inside_charging_span_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "from repro.obs.spans import span\n\n"
        "def f(network, algorithm, ledger):\n"
        "    with span('phase', ledger=ledger):\n"
        "        result = network.run(algorithm)\n"
        "        ledger.charge_result('phase', result)\n"
        "    return result.outputs\n",
    ) == []


def test_run_returned_to_caller_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm):\n"
        "    result = network.run(algorithm)\n"
        "    return [1], result\n",
    ) == []


def test_run_forwarded_to_callee_is_clean(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm, sink):\n"
        "    result = network.run(algorithm)\n"
        "    sink.consume(result)\n"
        "    return None\n",
    ) == []


def test_rounds_read_counts_as_accounted(tmp_path):
    assert check_snippet(
        tmp_path,
        "def f(network, algorithm):\n"
        "    result = network.run(algorithm)\n"
        "    return result.rounds + 1\n",
    ) == []


def test_zero_argument_run_is_ignored(tmp_path):
    # `.run()` of unrelated APIs (e.g. a test runner) is not an engine
    # execution; the rule keys on the algorithm argument.
    assert check_snippet(
        tmp_path,
        "def f(app):\n"
        "    app.run()\n",
    ) == []


# ----------------------------------------------------------------------
# Engine robustness + output formats
# ----------------------------------------------------------------------


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = run_lint([bad])
    assert [f.rule for f in report.new] == ["LNT001"]


def test_missing_path_raises(tmp_path):
    with pytest.raises(ReproError, match="does not exist"):
        run_lint([tmp_path / "missing.py"])


def test_text_output_lists_findings_and_summary():
    report = run_lint([FIXTURES / "det003_wall_clock.py"])
    text = render_text(report)
    assert "DET003" in text
    assert "1 new finding(s)" in text


def test_json_output_shape():
    report = run_lint([FIXTURES / "det005_string_hash.py"])
    document = json.loads(render_json(report))
    assert document["summary"]["new"] == 1
    (finding,) = document["findings"]
    assert finding["rule"] == "DET005"
    assert finding["line"] > 0
    assert set(document["rules"]) == set(ALL_RULE_IDS)


def test_github_output_is_annotation_commands():
    report = run_lint([FIXTURES / "det004_os_entropy.py"])
    lines = render_github(report).splitlines()
    assert lines[0].startswith("::error file=")
    assert "DET004" in lines[0]
    assert lines[-1].startswith("::notice::repro lint:")


def test_github_output_escapes_newlines_and_commas(tmp_path):
    report = run_lint([FIXTURES / "det004_os_entropy.py"])
    for line in render_github(report).splitlines():
        properties = line.split("::")[1]
        assert "\n" not in line
        # Property values must escape commas/colons they contain.
        if "file=" in properties:
            for assignment in properties.split(",")[1:]:
                assert "=" in assignment


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_clean(capsys):
    assert main(["lint", str(FIXTURES / "clean_module.py"), "--no-baseline"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_cli_exit_one_on_findings(capsys):
    code = main(["lint", str(FIXTURES / "det001_global_random.py"), "--no-baseline"])
    assert code == 1
    assert "DET001" in capsys.readouterr().out


def test_cli_json_flag(capsys):
    main(["lint", str(FIXTURES / "det001_global_random.py"), "--json",
          "--no-baseline"])
    document = json.loads(capsys.readouterr().out)
    assert document["summary"]["new"] == 1


def test_cli_github_flag(capsys):
    code = main(["lint", str(FIXTURES / "loc002_engine_internals.py"),
                 "--github", "--no-baseline"])
    assert code == 1
    assert "::error file=" in capsys.readouterr().out


def test_cli_congest_flag(capsys):
    clean = main(["lint", str(FIXTURES / "msg001_wide_payload.py"),
                  "--no-baseline"])
    assert clean == 0
    flagged = main(["lint", str(FIXTURES / "msg001_wide_payload.py"),
                    "--congest", "--no-baseline"])
    assert flagged == 1


def test_cli_select_flag(capsys):
    # Selecting only LED on a DET-violating file: clean.
    code = main(["lint", str(FIXTURES / "det001_global_random.py"),
                 "--select", "LED", "--no-baseline"])
    assert code == 0


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    fixture = str(FIXTURES / "det002_set_iteration.py")
    assert main(["lint", fixture, "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert baseline.exists()
    assert main(["lint", fixture, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_unknown_rule_is_error(capsys):
    code = main(["lint", str(FIXTURES / "clean_module.py"),
                 "--select", "BOGUS", "--no-baseline"])
    assert code == 1
    assert "unknown lint rule" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Meta: the shipped tree is clean, and core is clean *without* grace
# ----------------------------------------------------------------------


def test_repro_sources_are_lint_clean():
    """`repro lint src/` against the committed (empty) baseline."""
    baseline_path = Path(__file__).parent.parent / "lint-baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else None
    report = run_lint([REPO_SRC], baseline=baseline)
    assert report.ok, "\n" + render_text(report)


def test_core_has_no_lint_exemptions():
    """src/repro/core/ must be *fixed*, not pragma'd or baselined."""
    core = REPO_SRC / "repro" / "core"
    for path in sorted(core.rglob("*.py")):
        assert "lint-exempt" not in path.read_text(), (
            f"{path} carries a lint-exempt pragma; core findings must be fixed"
        )
    baseline_path = Path(__file__).parent.parent / "lint-baseline.json"
    if baseline_path.exists():
        baseline = Baseline.load(baseline_path)
        core_entries = [
            key for key in baseline.counts if "repro/core/" in key[0]
        ]
        assert core_entries == []


def test_rule_ids_are_unique_and_stable():
    ids = [rule.rule_id for rule in ALL_RULES]
    assert len(ids) == len(set(ids))
    for rule in ALL_RULES:
        assert rule.severity in ("error", "warning")
        assert rule.title
