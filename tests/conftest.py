"""Shared fixtures: small instances reused across the suite.

Delta = 16 instances use epsilon = 1/4 (the paper's epsilon = 1/63
requires Delta >= 63, see the remark below Definition 4); a handful of
slow tests exercise the paper constants at Delta = 63.
"""

from __future__ import annotations

import random

import pytest

from repro.acd import compute_acd
from repro.constants import AlgorithmParameters
from repro.graphs import hard_clique_graph, mixed_dense_graph
from repro.local import Network

SMALL_EPSILON = 0.25
SMALL_DELTA = 16
SMALL_CLIQUES = 34


@pytest.fixture(scope="session")
def small_params() -> AlgorithmParameters:
    return AlgorithmParameters(epsilon=SMALL_EPSILON)


@pytest.fixture(scope="session")
def hard_instance():
    """All-hard instance: 34 cliques of size 16, Delta = 16."""
    return hard_clique_graph(SMALL_CLIQUES, SMALL_DELTA)


@pytest.fixture(scope="session")
def hard_instance_seeded():
    """Randomized variant of the all-hard instance."""
    return hard_clique_graph(SMALL_CLIQUES, SMALL_DELTA, seed=7)


@pytest.fixture(scope="session")
def mixed_instance():
    """30% easy cliques (one internal edge deleted each)."""
    return mixed_dense_graph(
        SMALL_CLIQUES, SMALL_DELTA, easy_fraction=0.3, seed=2
    )


@pytest.fixture(scope="session")
def hard_acd(hard_instance):
    return compute_acd(hard_instance.network, epsilon=SMALL_EPSILON)


@pytest.fixture(scope="session")
def mixed_acd(mixed_instance):
    return compute_acd(mixed_instance.network, epsilon=SMALL_EPSILON)


def random_network(
    n: int, m: int, seed: int, *, shuffle_uids: bool = True
) -> Network:
    """A simple random graph network for subroutine tests."""
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < m and attempts < 50 * m:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    uids = list(range(n))
    if shuffle_uids:
        rng.shuffle(uids)
    return Network.from_edges(n, sorted(edges), uids)
