"""Tests for Linial's color reduction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.local import Network
from repro.subroutines import linial_coloring, linial_palette_bound, next_prime
from tests.conftest import random_network


class TestPrimes:
    @pytest.mark.parametrize(
        "x, expected", [(1, 2), (2, 3), (3, 5), (10, 11), (13, 17), (100, 101)]
    )
    def test_next_prime(self, x, expected):
        assert next_prime(x) == expected


class TestLinial:
    def test_proper_on_random_graph(self):
        net = random_network(200, 600, seed=1)
        colors, result = linial_coloring(net)
        for u, v in net.edges():
            assert colors[u] != colors[v]

    def test_palette_bound_respected(self):
        net = random_network(150, 450, seed=2)
        colors, _ = linial_coloring(net)
        assert max(colors) < linial_palette_bound(net.max_degree)

    def test_large_id_space_reduced(self):
        # uids spread over a huge space force genuine reduction rounds.
        net = Network.from_edges(
            8,
            [(i, (i + 1) % 8) for i in range(8)],
            uids=[i * 10 ** 6 + 17 for i in range(8)],
        )
        colors, result = linial_coloring(net, id_space=10 ** 7)
        assert max(colors) < linial_palette_bound(2)
        assert result.rounds >= 2  # several reduction steps happened
        for u, v in net.edges():
            assert colors[u] != colors[v]

    def test_rounds_grow_very_slowly(self):
        """log* behavior: huge ID spaces only add a couple of rounds."""
        cycle = [(i, (i + 1) % 20) for i in range(20)]
        rounds = []
        for exponent in (3, 6, 12):
            uids = [i * 10 ** exponent + 7 for i in range(20)]
            net = Network.from_edges(20, cycle, uids=uids)
            _, result = linial_coloring(net, id_space=10 ** (exponent + 2))
            rounds.append(result.rounds)
        assert rounds[-1] - rounds[0] <= 3

    def test_isolated_vertices(self):
        net = Network.from_edges(3, [])
        colors, result = linial_coloring(net)
        assert len(colors) == 3
        assert result.rounds == 0

    def test_single_edge(self):
        net = Network.from_edges(2, [(0, 1)])
        colors, _ = linial_coloring(net)
        assert colors[0] != colors[1]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10 ** 6))
    def test_property_proper_on_random_graphs(self, seed):
        net = random_network(40, 100, seed=seed)
        colors, _ = linial_coloring(net)
        assert all(colors[u] != colors[v] for u, v in net.edges())
        assert max(colors) < linial_palette_bound(net.max_degree)
