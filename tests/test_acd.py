"""Tests for the almost-clique decomposition (Lemma 2)."""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.errors import NotDenseError
from repro.graphs import hard_clique_graph, mixed_dense_graph
from tests.conftest import random_network


class TestRecovery:
    def test_planted_cliques_recovered(self, hard_instance, hard_acd):
        assert hard_acd.is_dense
        assert sorted(map(tuple, hard_acd.cliques)) == sorted(
            map(tuple, hard_instance.cliques)
        )

    def test_clique_index_consistent(self, hard_acd):
        for index, members in enumerate(hard_acd.cliques):
            for v in members:
                assert hard_acd.clique_index[v] == index

    def test_mixed_instance_still_dense(self, mixed_acd):
        assert mixed_acd.is_dense
        assert mixed_acd.num_cliques == 34

    def test_seeded_instance(self):
        instance = hard_clique_graph(34, 16, seed=11)
        acd = compute_acd(instance.network, epsilon=0.25)
        assert acd.is_dense and acd.num_cliques == 34


class TestProperties:
    def test_lemma2_size_bounds(self, hard_instance, hard_acd):
        delta = hard_instance.delta
        eps = hard_acd.epsilon
        for members in hard_acd.cliques:
            assert (1 - eps / 4) * delta <= len(members) <= (1 + eps) * delta

    def test_lemma2_inside_degree(self, hard_instance, hard_acd):
        net = hard_instance.network
        delta = hard_instance.delta
        eps = hard_acd.epsilon
        for members in hard_acd.cliques:
            member_set = set(members)
            for v in members:
                inside = sum(1 for u in net.adjacency[v] if u in member_set)
                assert inside >= (1 - eps) * delta

    def test_lemma2_outsider_bound(self, hard_instance, hard_acd):
        net = hard_instance.network
        delta = hard_instance.delta
        eps = hard_acd.epsilon
        for v in range(net.n):
            counts: dict[int, int] = {}
            own = hard_acd.clique_index[v]
            for u in net.adjacency[v]:
                other = hard_acd.clique_index[u]
                if other != -1 and other != own:
                    counts[other] = counts.get(other, 0) + 1
            assert all(c <= (1 - eps / 2) * delta for c in counts.values())

    def test_external_neighbors_helper(self, hard_instance, hard_acd):
        net = hard_instance.network
        for v in range(0, net.n, 61):
            external = hard_acd.external_neighbors(net, v)
            assert len(external) == 1  # k = 1 instances


class TestSparseInputs:
    def test_random_graph_is_sparse(self):
        net = random_network(100, 300, seed=0)
        acd = compute_acd(net, epsilon=0.25)
        assert not acd.is_dense
        with pytest.raises(NotDenseError):
            acd.require_dense()

    def test_require_dense_passes_on_dense(self, hard_acd):
        hard_acd.require_dense()

    def test_mixed_easy_vertices_stay_in_cliques(self, mixed_instance):
        acd = compute_acd(mixed_instance.network, epsilon=0.25)
        # The two degree-15 vertices of each easy clique must still be
        # assigned to their clique, not dropped as sparse.
        assert not acd.sparse


class TestDistributedACD:
    """The O(1)-round locality certification: every vertex decides its
    clique from its radius-3 ball, and all decisions agree with the
    centralized computation."""

    def test_matches_centralized_on_hard(self, hard_instance, hard_acd):
        from repro.acd import distributed_acd

        local = distributed_acd(hard_instance.network, epsilon=0.25)
        assert sorted(map(tuple, local.cliques)) == sorted(
            map(tuple, hard_acd.cliques)
        )
        assert local.sparse == hard_acd.sparse

    def test_matches_centralized_on_mixed(self, mixed_instance, mixed_acd):
        from repro.acd import distributed_acd

        local = distributed_acd(mixed_instance.network, epsilon=0.25)
        assert sorted(map(tuple, local.cliques)) == sorted(
            map(tuple, mixed_acd.cliques)
        )

    def test_sparse_vertices_classify_themselves(self):
        from repro.acd import local_clique_view
        from repro.graphs import sparse_dense_mix

        instance = sparse_dense_mix(34, 16, seed=1)
        blob = instance.meta["blob_vertices"]
        for v in blob[:5]:
            assert local_clique_view(instance.network, v, 0.25) is None

    def test_clique_members_agree(self, hard_instance):
        from repro.acd import local_clique_view

        members = hard_instance.cliques[0]
        views = {
            local_clique_view(hard_instance.network, v, 0.25)
            for v in members[:4]
        }
        assert len(views) == 1


class TestLemma2Checkers:
    def test_check_lemma2_passes(self, hard_instance, hard_acd):
        from repro.verify import check_lemma2

        check_lemma2(hard_instance.network, hard_acd)

    def test_observation3_bound(self, hard_instance, hard_acd):
        from repro.verify import check_observation3

        worst = check_observation3(hard_instance.network, hard_acd)
        assert worst == 1  # k = 1 instances

    def test_check_lemma2_catches_tampering(self, hard_instance, hard_acd):
        import dataclasses

        from repro.errors import InvariantViolation
        from repro.verify import check_lemma2

        broken = dataclasses.replace(
            hard_acd,
            cliques=[hard_acd.cliques[0][:4]] + hard_acd.cliques[1:],
        )
        with pytest.raises(InvariantViolation, match="Lemma 2"):
            check_lemma2(hard_instance.network, broken)
