"""Tests for the sharded fleet tier: hash ring, router, supervisor.

The in-process tests run several :class:`ColoringServer` instances and
one :class:`FleetRouter` on a single event loop (fast, deterministic);
:class:`TestFleetSubprocess` runs the real thing — ``repro serve``
subprocesses under a :class:`FleetSupervisor` — and kills a shard
mid-run to exercise the crash → re-route → restart → heal path the
in-process harness can only approximate.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from contextlib import asynccontextmanager

import pytest

from repro.errors import ReproError
from repro.graphs import hard_clique_graph
from repro.serve import (
    ColoringServer,
    FleetConfig,
    FleetRouter,
    FleetSupervisor,
    HashRing,
    InstanceRegistry,
    LoadgenConfig,
    RouterConfig,
    ServeClient,
    ServeConfig,
    make_cache_key,
)
from repro.serve.loadgen import _request_seeds, _zipf_seeds

EPSILON = 0.25


@pytest.fixture(scope="module")
def instance():
    return hard_clique_graph(16, 8, seed=3)


@pytest.fixture(scope="module")
def payload(instance):
    return {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }


# ----------------------------------------------------------------------
# The hash ring
# ----------------------------------------------------------------------


class TestHashRing:
    NODES = ("unix:/a.sock", "unix:/b.sock", "unix:/c.sock", "unix:/d.sock")

    def test_deterministic_across_instances(self):
        one = HashRing(self.NODES, vnodes=32, seed=7)
        two = HashRing(tuple(reversed(self.NODES)), vnodes=32, seed=7)
        for index in range(50):
            key = f"key-{index}"
            assert one.owners(key) == two.owners(key)
        assert one.ownership() == two.ownership()

    def test_seed_changes_placement(self):
        one = HashRing(self.NODES, vnodes=32, seed=0)
        two = HashRing(self.NODES, vnodes=32, seed=1)
        assert any(
            one.owners(f"key-{i}") != two.owners(f"key-{i}")
            for i in range(50)
        )

    def test_owners_are_distinct_and_bounded(self):
        ring = HashRing(self.NODES, vnodes=16, seed=0)
        owners = ring.owners("some-key")
        assert sorted(owners) == sorted(self.NODES)
        assert ring.owners("some-key", count=2) == owners[:2]
        assert HashRing((), vnodes=16, seed=0).owners("some-key") == []

    def test_remove_then_readd_restores_identical_slots(self):
        ring = HashRing(self.NODES, vnodes=32, seed=3)
        before = {f"key-{i}": ring.owners(f"key-{i}") for i in range(64)}
        ring.remove(self.NODES[1])
        assert self.NODES[1] not in ring
        ring.add(self.NODES[1])
        after = {f"key-{i}": ring.owners(f"key-{i}") for i in range(64)}
        assert before == after

    def test_failover_order_equals_removal(self):
        # The next owner with the primary present must be the owner
        # once the primary is removed: failover and membership change
        # route identically (DESIGN.md §14).
        full = HashRing(self.NODES, vnodes=32, seed=5)
        for index in range(32):
            key = f"key-{index}"
            primary, successor = full.owners(key, count=2)
            without = HashRing(
                tuple(n for n in self.NODES if n != primary),
                vnodes=32, seed=5,
            )
            assert without.owners(key)[0] == successor

    def test_ownership_sums_to_one_and_is_balanced(self):
        ring = HashRing(self.NODES, vnodes=64, seed=0)
        shares = ring.ownership()
        assert sum(shares.values()) == pytest.approx(1.0)
        for share in shares.values():
            assert 0.1 < share < 0.45

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ReproError):
            HashRing(self.NODES, vnodes=0)


# ----------------------------------------------------------------------
# Zipf hot-key loadgen stream
# ----------------------------------------------------------------------


class TestZipfLoadgen:
    def _config(self, **overrides):
        options = {
            "unix_path": "/tmp/unused.sock", "requests": 400,
            "hot_keys": 8, "zipf_s": 1.2, "base_seed": 5,
        }
        options.update(overrides)
        return LoadgenConfig(**options)

    def test_stream_is_deterministic(self):
        assert _request_seeds(self._config()) == _request_seeds(self._config())

    def test_base_seed_changes_the_stream(self):
        assert _request_seeds(self._config()) != _request_seeds(
            self._config(base_seed=6)
        )

    def test_pool_matches_the_distinct_stream_prefix(self):
        config = self._config()
        distinct = _request_seeds(self._config(hot_keys=0, requests=8))
        assert set(_zipf_seeds(config)) <= set(distinct)

    def test_skew_favors_low_ranks(self):
        config = self._config(requests=2000)
        pool = _request_seeds(self._config(hot_keys=0, requests=8))
        counts = [0] * 8
        for seed in _zipf_seeds(config):
            counts[pool.index(seed)] += 1
        assert counts[0] > counts[-1]
        assert counts[0] > 2000 / 8  # hotter than uniform

    def test_rejects_bad_knobs(self):
        with pytest.raises(ReproError):
            self._config(hot_keys=-1)
        with pytest.raises(ReproError):
            self._config(zipf_s=0.0)
        with pytest.raises(ReproError):
            self._config(duplicate_fraction=0.5)


# ----------------------------------------------------------------------
# Router + in-process shards
# ----------------------------------------------------------------------


@asynccontextmanager
async def routed(tmp_path, shards=3, per_shard=None, **router_overrides):
    """N in-process shards behind one router, plus a connected client."""
    servers = []
    specs = []
    for index in range(shards):
        options = {"jobs": 0, "linger_ms": 1.0}
        options.update((per_shard or {}).get(index, {}))
        server = ColoringServer(ServeConfig(
            unix_path=str(tmp_path / f"shard-{index}.sock"), **options
        ))
        await server.start()
        servers.append(server)
        specs.append(f"unix:{tmp_path / f'shard-{index}.sock'}")
    options = {"probe_interval_s": 0.0}
    options.update(router_overrides)
    router = FleetRouter(RouterConfig(
        shards=tuple(specs),
        unix_path=str(tmp_path / "router.sock"),
        **options,
    ))
    await router.start()
    client = ServeClient(unix_path=str(tmp_path / "router.sock"))
    await client.connect()
    try:
        yield router, servers, client
    finally:
        await client.close()
        await router.close()
        for server in servers:
            await server.close()


def seed_owned_by(router, instance_hash, label, *, method="randomized"):
    """The first seed whose cache key the given shard owns."""
    for seed in range(500):
        key = make_cache_key(instance_hash, method, seed, EPSILON, {})
        if router.ring.owners(key)[0] == label:
            return seed
    raise AssertionError(f"no seed owned by {label}")


async def crash_shard(router, servers, index):
    """In-process stand-in for a shard crash: stop the listener and
    sever the router's pooled connection so the next dispatch fails."""
    await servers[index].close()
    label = router.shard_labels()[index]
    await router._shards[label].client.close()
    return label


class TestRouterEndToEnd:
    def test_register_fans_out_to_every_shard(self, tmp_path, payload):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                response = await client.request(
                    {"op": "register", "instance": payload}
                )
                assert response["ok"]
                assert set(response["shards"]) == set(router.shard_labels())
                assert all(response["shards"].values())
                for server in servers:
                    assert response["instance_hash"] in server.registry

        asyncio.run(scenario())

    def test_color_is_byte_identical_to_a_direct_shard(
        self, tmp_path, payload
    ):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized", "seed": 9,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                via_router = await client.request(dict(body))
                direct_client = ServeClient(
                    unix_path=servers[0].config.unix_path
                )
                await direct_client.connect()
                direct = await direct_client.request(dict(body))
                await direct_client.close()
                assert via_router["ok"] and direct["ok"]
                assert json.dumps(via_router["result"], sort_keys=True) == \
                    json.dumps(direct["result"], sort_keys=True)

        asyncio.run(scenario())

    def test_same_key_routes_to_the_same_shard(self, tmp_path, payload):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized", "seed": 3,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                first = await client.request(dict(body))
                second = await client.request(dict(body))
                assert first["ok"] and second["ok"]
                assert second["cached"] is True  # same shard, warm cache

        asyncio.run(scenario())

    def test_crash_reroutes_with_byte_identical_response(
        self, tmp_path, payload
    ):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                label = router.shard_labels()[0]
                seed = seed_owned_by(
                    router, registered["instance_hash"], label
                )
                body = {
                    "op": "color", "method": "randomized", "seed": seed,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                before = await client.request(dict(body))
                assert before["ok"]
                await crash_shard(router, servers, 0)
                after = await client.request(dict(body))
                assert after["ok"]
                assert json.dumps(after["result"], sort_keys=True) == \
                    json.dumps(before["result"], sort_keys=True)
                assert router.rerouted >= 1
                assert label not in router.ring

        asyncio.run(scenario())

    def test_fleet_op_reflects_crash_and_breaker_state(
        self, tmp_path, payload
    ):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                healthy = await client.request({"op": "fleet"})
                assert healthy["ok"]
                assert set(healthy["shards"]) == set(router.shard_labels())
                total = sum(
                    shard["ownership"]
                    for shard in healthy["shards"].values()
                )
                assert total == pytest.approx(1.0, abs=0.01)
                label = await crash_shard(router, servers, 0)
                seed = seed_owned_by(
                    router, registered["instance_hash"], label
                )
                await client.request({
                    "op": "color", "method": "randomized", "seed": seed,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                report = await client.request({"op": "fleet"})
                crashed = report["shards"][label]
                assert crashed["state"] == "down"
                assert crashed["in_ring"] is False
                assert crashed["breaker"] in ("closed", "open", "half_open")
                alive = [
                    shard for name, shard in report["shards"].items()
                    if name != label
                ]
                assert all(shard["in_ring"] for shard in alive)
                assert label not in report["ring"]["members"]

        asyncio.run(scenario())

    def test_unknown_instance_is_healed_from_router_registry(
        self, tmp_path, payload
    ):
        async def scenario():
            async with routed(tmp_path) as (router, servers, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                label = router.shard_labels()[0]
                seed = seed_owned_by(
                    router, registered["instance_hash"], label
                )
                # The shard restarts conceptually: registry and memory
                # cache both gone, so the dispatch hits unknown_instance.
                servers[0].registry = InstanceRegistry(8)
                servers[0].cache._entries.clear()
                response = await client.request({
                    "op": "color", "method": "randomized", "seed": seed,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                assert response["ok"]
                assert router.healed == 1
                assert registered["instance_hash"] in servers[0].registry

        asyncio.run(scenario())

    def test_draining_shard_leaves_ring_without_dropping_inflight(
        self, tmp_path, payload
    ):
        def slow_runner(specs, instances):
            time.sleep(0.2)
            return [
                {"key": spec["key"],
                 "result": {"colors": [0], "num_colors": 1}}
                for spec in specs
            ]

        async def scenario():
            per_shard = {0: {"batch_runner": slow_runner}}
            async with routed(tmp_path, per_shard=per_shard) as (
                router, servers, client
            ):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                label = router.shard_labels()[0]
                seed = seed_owned_by(
                    router, registered["instance_hash"], label
                )
                inflight = asyncio.get_running_loop().create_task(
                    client.request({
                        "op": "color", "method": "randomized",
                        "seed": seed, "epsilon": EPSILON,
                        "instance_hash": registered["instance_hash"],
                    })
                )
                await asyncio.sleep(0.05)  # let it reach shard 0's runner
                drain_client = ServeClient(
                    unix_path=servers[0].config.unix_path
                )
                await drain_client.connect()
                drained = await drain_client.request({"op": "drain"})
                await drain_client.close()
                assert drained["ok"] and drained["drained"]
                # The in-flight request was not dropped by the drain.
                response = await inflight
                assert response["ok"]
                # New work owned by the drained shard lands elsewhere.
                other = await client.request({
                    "op": "color", "method": "randomized",
                    "seed": seed, "epsilon": EPSILON, "no_cache": True,
                    "instance_hash": registered["instance_hash"],
                })
                assert other["ok"]
                assert label not in router.ring

        asyncio.run(scenario())

    def test_aggregated_ops_cover_the_fleet(self, tmp_path, payload):
        async def scenario():
            async with routed(tmp_path, shards=2) as (
                router, servers, client
            ):
                health = await client.request({"op": "health"})
                assert health["ok"] and health["status"] == "ok"
                assert set(health["shards"]) == set(router.shard_labels())
                metrics = await client.request({"op": "metrics"})
                assert "server" in metrics  # loadgen reads this key
                assert set(metrics["shards"]) == set(router.shard_labels())
                assert "router.requests" in metrics["metrics"]
                status = await client.request({"op": "status"})
                assert status["ok"] and status["state"] == "accepting"
                assert status["ring"]["members"] == sorted(
                    router.shard_labels()
                )

        asyncio.run(scenario())

    def test_single_server_bounces_the_fleet_op(self, tmp_path):
        async def scenario():
            server = ColoringServer(ServeConfig(
                unix_path=str(tmp_path / "solo.sock"), jobs=0
            ))
            await server.start()
            client = ServeClient(unix_path=server.config.unix_path)
            await client.connect()
            try:
                response = await client.request({"op": "fleet"})
                assert response["ok"] is False
                assert response["error"]["code"] == "unsupported"
            finally:
                await client.close()
                await server.close()

        asyncio.run(scenario())

    def test_router_drain_op_finishes_inflight_then_stops(
        self, tmp_path, payload
    ):
        async def scenario():
            async with routed(tmp_path, shards=2) as (
                router, servers, client
            ):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                response = await client.request({
                    "op": "color", "method": "randomized", "seed": 1,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                assert response["ok"]
                drained = await client.request({"op": "drain"})
                assert drained["ok"] and drained["drained"]
                refused = await client.request({
                    "op": "color", "method": "randomized", "seed": 2,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                assert refused["error"]["code"] == "draining"
                await asyncio.wait_for(router.wait_stopped(), 2.0)

        asyncio.run(scenario())

    def test_router_signal_drain_task_is_retained_and_deduplicated(
        self, tmp_path
    ):
        # Regression: the SIGTERM drain task handle must be stored (the
        # event loop only weakly references tasks) and a repeat signal
        # during an in-flight drain must not spawn a second task.
        async def scenario():
            async with routed(tmp_path) as (router, _servers, _client):
                router._on_signal()
                first = router._drain_task
                assert first is not None
                router._on_signal()
                assert router._drain_task is first
                await asyncio.wait_for(router.wait_stopped(), 2.0)

        asyncio.run(scenario())


class TestRouterConfig:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ReproError):
            RouterConfig(shards=())

    def test_rejects_duplicate_shards(self):
        with pytest.raises(ReproError):
            FleetRouter(RouterConfig(
                shards=("unix:/a.sock", "unix:/a.sock")
            ))

    @pytest.mark.parametrize("overrides", [
        {"vnodes": 0},
        {"attempts": 0},
        {"timeout_ms": 0},
        {"hedge_ms": -1},
        {"probe_interval_s": -1},
        {"max_inflight": 0},
        {"idle_timeout_s": -1},
    ])
    def test_rejects_bad_knobs(self, overrides):
        with pytest.raises(ReproError):
            RouterConfig(shards=("unix:/a.sock",), **overrides)


class TestFleetConfig:
    @pytest.mark.parametrize("overrides", [
        {"shards": 0},
        {"jobs": -1},
        {"drain_timeout_s": 0},
        {"startup_timeout_s": 0},
        {"max_restarts": -1},
        {"cache_max_bytes": 0},
    ])
    def test_rejects_bad_knobs(self, overrides):
        with pytest.raises(ReproError):
            FleetConfig(**overrides)


class TestFleetSignal:
    def test_signal_stop_task_is_retained_and_deduplicated(self, tmp_path):
        # Regression: same weak-reference hazard as the server/router
        # drain tasks — the supervisor must keep the handle and treat a
        # repeat signal during the stop cascade as a no-op.  Exercised
        # without subprocesses: _signal_stop only drains the router's
        # admission controller, which works pre-start.
        async def scenario():
            config = FleetConfig(
                shards=1,
                unix_path=str(tmp_path / "router.sock"),
                runtime_dir=str(tmp_path / "rt"),
                cache_dir="",
            )
            supervisor = FleetSupervisor(config)
            supervisor._on_signal()
            first = supervisor._signal_task
            assert first is not None
            supervisor._on_signal()
            assert supervisor._signal_task is first
            await asyncio.wait_for(first, 2.0)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The real thing: supervisor + subprocess shards
# ----------------------------------------------------------------------


class TestFleetSubprocess:
    def test_kill_reroute_restart_heal_and_cascade_drain(
        self, tmp_path, payload
    ):
        async def scenario():
            config = FleetConfig(
                shards=2,
                unix_path=str(tmp_path / "router.sock"),
                runtime_dir=str(tmp_path / "rt"),
                cache_dir="",  # no disk tier: survivors must recompute
                probe_interval_s=0.1,
                monitor_interval_s=0.05,
                restart_backoff_s=0.05,
            )
            supervisor = FleetSupervisor(config)
            await supervisor.start()
            client = ServeClient(unix_path=config.unix_path)
            await client.connect()
            try:
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                assert registered["ok"]
                instance_hash = registered["instance_hash"]
                seeds = list(range(8))
                before = {}
                for seed in seeds:
                    response = await client.request({
                        "op": "color", "method": "randomized",
                        "seed": seed, "epsilon": EPSILON,
                        "instance_hash": instance_hash,
                    })
                    assert response["ok"]
                    before[seed] = response["result"]

                victim = supervisor.shard_pid(0)
                os.kill(victim, signal.SIGKILL)
                # Every seed still answers, byte-identically: keys owned
                # by the dead shard re-route to the next ring owner,
                # which recomputes the same pure function.
                for seed in seeds:
                    response = await client.request({
                        "op": "color", "method": "randomized",
                        "seed": seed, "epsilon": EPSILON,
                        "instance_hash": instance_hash,
                    })
                    assert response["ok"]
                    assert json.dumps(response["result"], sort_keys=True) \
                        == json.dumps(before[seed], sort_keys=True)
                assert supervisor.router.rerouted >= 1

                # The supervisor restarts the shard and the router heals
                # its empty registry on the next owned dispatch.
                deadline = asyncio.get_running_loop().time() + 30.0
                while True:
                    report = await client.request({"op": "fleet"})
                    states = {
                        name: shard["state"]
                        for name, shard in report["shards"].items()
                    }
                    if all(state == "ok" for state in states.values()):
                        break
                    assert asyncio.get_running_loop().time() < deadline, \
                        states
                    await asyncio.sleep(0.1)
                assert supervisor.restarts[0] == 1
                assert supervisor.shard_pid(0) != victim
                for seed in seeds:
                    response = await client.request({
                        "op": "color", "method": "randomized",
                        "seed": seed, "epsilon": EPSILON,
                        "instance_hash": instance_hash,
                    })
                    assert response["ok"]
                    assert json.dumps(response["result"], sort_keys=True) \
                        == json.dumps(before[seed], sort_keys=True)
                # Under load a probe can transiently time out and pull
                # a shard from the ring; poll until the prober restores
                # both instead of asserting a single snapshot.
                deadline = asyncio.get_running_loop().time() + 30.0
                while True:
                    report = await client.request({"op": "fleet"})
                    if all(
                        shard["in_ring"] is True
                        and shard["breaker"] in (
                            "closed", "open", "half_open"
                        )
                        for shard in report["shards"].values()
                    ):
                        break
                    assert asyncio.get_running_loop().time() < deadline, \
                        report["shards"]
                    await asyncio.sleep(0.1)
            finally:
                await client.close()
                await supervisor.close()
            # Cascade drain left no orphan: both shards have exited.
            for proc in supervisor._procs:
                assert proc is not None and proc.returncode is not None

        asyncio.run(scenario())
