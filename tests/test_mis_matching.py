"""Tests for MIS and maximal matching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import (
    line_network,
    luby_mis,
    maximal_independent_set,
    maximal_matching,
    verify_matching,
    verify_mis,
)
from tests.conftest import random_network


class TestMIS:
    def test_deterministic_on_random_graph(self):
        net = random_network(150, 450, seed=1)
        membership, _ = maximal_independent_set(net)
        verify_mis(net, membership)

    def test_luby_on_random_graph(self):
        net = random_network(150, 450, seed=2)
        membership, result = luby_mis(net, seed=3)
        verify_mis(net, membership)
        assert result.rounds <= 30  # O(log n) w.h.p.

    def test_complete_graph_single_winner(self):
        net = Network.from_edges(
            6, [(i, j) for i in range(6) for j in range(i + 1, 6)]
        )
        membership, _ = maximal_independent_set(net)
        assert sum(membership) == 1

    def test_empty_graph_everyone_joins(self):
        net = Network.from_edges(5, [])
        membership, _ = maximal_independent_set(net)
        assert all(membership)

    def test_verify_rejects_non_independent(self):
        net = Network.from_edges(2, [(0, 1)])
        with pytest.raises(SubroutineError, match="independent"):
            verify_mis(net, [True, True])

    def test_verify_rejects_non_maximal(self):
        net = Network.from_edges(3, [(0, 1)])
        with pytest.raises(SubroutineError, match="maximal"):
            verify_mis(net, [True, False, False])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_property_luby_valid(self, seed):
        net = random_network(40, 90, seed=seed)
        membership, _ = luby_mis(net, seed=seed)
        verify_mis(net, membership)


class TestLineNetwork:
    def test_structure(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        line, edge_list = line_network(net)
        assert line.n == 3
        assert line.edges() == [(0, 1), (1, 2)]
        assert edge_list == [(0, 1), (1, 2), (2, 3)]

    def test_subset(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        line, edge_list = line_network(net, [(0, 1), (2, 3)])
        assert line.n == 2
        assert line.edges() == []

    def test_non_edge_rejected(self):
        net = Network.from_edges(3, [(0, 1)])
        with pytest.raises(SubroutineError, match="not an edge"):
            line_network(net, [(0, 2)])

    def test_duplicate_rejected(self):
        net = Network.from_edges(2, [(0, 1)])
        with pytest.raises(SubroutineError, match="duplicate"):
            line_network(net, [(0, 1), (1, 0)])


class TestMatching:
    def test_deterministic(self):
        net = random_network(120, 300, seed=4)
        matching, _ = maximal_matching(net)
        verify_matching(net, matching, net.edges())

    def test_randomized(self):
        net = random_network(120, 300, seed=5)
        matching, result = maximal_matching(net, deterministic=False, seed=6)
        verify_matching(net, matching, net.edges())

    def test_subset_maximality(self):
        net = random_network(60, 150, seed=7)
        subset = net.edges()[::2]
        matching, _ = maximal_matching(net, subset)
        verify_matching(net, matching, subset)

    def test_perfect_on_disjoint_edges(self):
        net = Network.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        matching, _ = maximal_matching(net)
        assert len(matching) == 3

    def test_verify_rejects_shared_endpoint(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(SubroutineError, match="not a matching"):
            verify_matching(net, [(0, 1), (1, 2)])

    def test_verify_rejects_non_maximal(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(SubroutineError, match="not maximal"):
            verify_matching(net, [(0, 1)], [(0, 1), (2, 3)])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_property_matching_valid(self, seed):
        net = random_network(30, 60, seed=seed)
        matching, _ = maximal_matching(net)
        verify_matching(net, matching, net.edges())
