"""Campaign matrix: every generator family x every pipeline.

A single parametrized safety net that catches cross-cutting
regressions: any instance family the package can generate must be
colorable by every applicable entry point, and the coloring must
verify.
"""

from __future__ import annotations

import pytest

from repro import delta_color, verify_coloring
from repro.constants import AlgorithmParameters
from repro.graphs import (
    hard_clique_graph,
    heterogeneous_hard_cliques,
    mixed_dense_graph,
    projective_plane_clique_graph,
    sparse_dense_mix,
)

FAMILIES = {
    "hard-circulant": lambda: (
        hard_clique_graph(34, 16, seed=5), AlgorithmParameters(epsilon=0.25)
    ),
    "hard-k2": lambda: (
        hard_clique_graph(64, 16, external_per_vertex=2, seed=5),
        AlgorithmParameters(epsilon=0.25),
    ),
    "mixed-30": lambda: (
        mixed_dense_graph(34, 16, easy_fraction=0.3, seed=5),
        AlgorithmParameters(epsilon=0.25),
    ),
    "all-easy": lambda: (
        mixed_dense_graph(34, 16, easy_fraction=1.0, seed=5),
        AlgorithmParameters(epsilon=0.25),
    ),
    "pg-girth6": lambda: (
        projective_plane_clique_graph(13), AlgorithmParameters(epsilon=1 / 8)
    ),
    "heterogeneous": lambda: (
        heterogeneous_hard_cliques(1, 16, seed=5),
        AlgorithmParameters(epsilon=0.25),
    ),
}

METHODS = ["deterministic", "randomized", "general"]


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("method", METHODS)
def test_campaign(family, method):
    instance, params = FAMILIES[family]()
    result = delta_color(
        instance.network, method=method, params=params, seed=3
    )
    verify_coloring(instance.network, result.colors, instance.delta)
    assert result.num_colors == instance.delta


@pytest.mark.parametrize("method", METHODS)
def test_campaign_sparse_mix(method):
    """The sparse mix is only accepted by the general method."""
    instance = sparse_dense_mix(34, 16, seed=5)
    params = AlgorithmParameters(epsilon=0.25)
    if method == "general":
        result = delta_color(
            instance.network, method=method, params=params, seed=3
        )
        verify_coloring(instance.network, result.colors, 16)
    else:
        from repro.errors import NotDenseError

        with pytest.raises(NotDenseError):
            delta_color(instance.network, method=method, params=params, seed=3)
