"""Tests for repro.serve: protocol, cache, admission, batching, server."""

from __future__ import annotations

import asyncio
import json
import threading
import time
from contextlib import asynccontextmanager

import pytest

from repro.constants import AlgorithmParameters
from repro.core.deterministic import delta_color_deterministic
from repro.graphs import hard_clique_graph
from repro.runner import WorkerPool
from repro.serve import (
    AdmissionController,
    BatcherClosed,
    ColoringServer,
    MicroBatcher,
    PendingRequest,
    ProtocolError,
    ResultCache,
    ServeClient,
    ServeConfig,
    execute_batch,
    make_cache_key,
    normalize_instance_payload,
    parse_color_request,
    parse_request,
)

EPSILON = 0.25


@pytest.fixture(scope="module")
def instance():
    return hard_clique_graph(16, 8, seed=3)


@pytest.fixture(scope="module")
def payload(instance):
    return {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }


# ----------------------------------------------------------------------
# Protocol framing
# ----------------------------------------------------------------------


class TestProtocol:
    def test_rejects_malformed_json(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"{nope")
        assert info.value.code == "bad_request"

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"[1, 2]")
        assert info.value.code == "bad_request"

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'{"id": 1}')
        assert info.value.code == "bad_request"

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'{"op": "paint"}')
        assert info.value.code == "unsupported"

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'{"op": "\xff"}')
        assert info.value.code == "bad_request"

    def test_color_needs_an_instance(self):
        with pytest.raises(ProtocolError, match="instance"):
            parse_color_request({"op": "color", "method": "deterministic"})

    def test_color_rejects_both_instance_forms(self):
        with pytest.raises(ProtocolError, match="not both"):
            parse_color_request(
                {"op": "color", "instance": {"n": 1}, "instance_hash": "x"}
            )

    def test_color_rejects_unknown_method(self):
        with pytest.raises(ProtocolError) as info:
            parse_color_request(
                {"op": "color", "method": "magic", "instance_hash": "x"}
            )
        assert info.value.code == "unsupported"

    def test_color_rejects_bad_epsilon(self):
        with pytest.raises(ProtocolError, match="epsilon"):
            parse_color_request(
                {"op": "color", "epsilon": 1.5, "instance_hash": "x"}
            )

    def test_color_rejects_non_positive_deadline(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            parse_color_request(
                {"op": "color", "deadline_ms": 0, "instance_hash": "x"}
            )

    def test_color_rejects_unknown_options(self):
        with pytest.raises(ProtocolError, match="sleep"):
            parse_color_request({
                "op": "color", "instance_hash": "x",
                "options": {"sleep": 1},
            })

    def test_color_rejects_wrong_field_type(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_color_request(
                {"op": "color", "seed": "three", "instance_hash": "x"}
            )

    def test_color_accepts_engine_option(self):
        for engine in ("fast", "legacy", "columnar"):
            request = parse_color_request({
                "op": "color", "instance_hash": "x",
                "options": {"engine": engine},
            })
            assert request.options["engine"] == engine

    def test_color_rejects_unknown_engine(self):
        with pytest.raises(ProtocolError, match="turbo"):
            parse_color_request({
                "op": "color", "instance_hash": "x",
                "options": {"engine": "turbo"},
            })

    def test_normalize_matches_dense_instance_hash(self, instance, payload):
        instance_hash, slim = normalize_instance_payload(payload)
        assert instance_hash == instance.canonical_hash()
        assert set(slim) == {"n", "edges", "delta", "uids"}

    def test_normalize_drops_planted_structure(self, payload):
        decorated = {**payload, "cliques": [[0, 1]], "meta": {"x": 1}}
        assert normalize_instance_payload(decorated)[0] == (
            normalize_instance_payload(payload)[0]
        )

    def test_normalize_rejects_bad_edges(self):
        with pytest.raises(ProtocolError, match="pair of ints"):
            normalize_instance_payload({"n": 3, "edges": [[0]]})
        with pytest.raises(ProtocolError, match="out of range"):
            normalize_instance_payload({"n": 3, "edges": [[0, 7]]})
        with pytest.raises(ProtocolError, match="out of range"):
            normalize_instance_payload({"n": 3, "edges": [[1, 1]]})

    def test_normalize_rejects_wrong_delta(self, payload):
        with pytest.raises(ProtocolError, match="maximum degree"):
            normalize_instance_payload({**payload, "delta": 3})

    def test_normalize_rejects_bad_uids(self, payload):
        with pytest.raises(ProtocolError, match="uids"):
            normalize_instance_payload({**payload, "uids": [1, 2]})


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", {"x": 1})
        assert cache.get("a") == {"x": 1}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # touch: b becomes the eviction candidate
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        cache.put("a", {"v": 1})
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_disk_spill_survives_restart(self, tmp_path):
        first = ResultCache(4, disk_dir=tmp_path / "cache")
        first.put("k", {"v": 42})
        second = ResultCache(4, disk_dir=tmp_path / "cache")
        assert second.get("k") == {"v": 42}
        assert second.disk_hits == 1
        # Promoted into memory: the next get is a pure memory hit.
        assert second.get("k") == {"v": 42}
        assert second.disk_hits == 1

    def test_disk_survives_memory_eviction(self, tmp_path):
        cache = ResultCache(1, disk_dir=tmp_path / "cache")
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})  # evicts a from memory, not from disk
        assert cache.get("a") == {"v": 1}
        assert cache.disk_hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(2, disk_dir=tmp_path / "cache")
        (tmp_path / "cache" / "bad.json").write_text("{torn")
        assert cache.get("bad") is None

    def test_disk_cap_prunes_oldest_entries_on_put(self, tmp_path):
        import os

        cache = ResultCache(
            0, disk_dir=tmp_path / "cache", disk_max_bytes=64
        )
        blob = {"v": "x" * 20}  # ~30 bytes on disk per entry
        for index, key in enumerate(("old", "mid", "new")):
            cache.put(key, blob)
            # Distinct mtimes make the pruning order deterministic.
            path = tmp_path / "cache" / f"{key}.json"
            os.utime(path, (1000 + index, 1000 + index))
        cache.put("newest", blob)  # over the cap: prunes oldest first
        files = {p.stem for p in (tmp_path / "cache").glob("*.json")}
        assert "newest" in files
        assert "old" not in files
        assert cache.disk_evictions >= 1
        _, total = cache.disk_usage()
        assert total <= 64

    def test_prune_is_a_noop_without_a_cap(self, tmp_path):
        cache = ResultCache(2, disk_dir=tmp_path / "cache")
        cache.put("a", {"v": 1})
        assert cache.prune() == 0
        assert cache.get("a") == {"v": 1}

    def test_prune_accepts_an_override_cap(self, tmp_path):
        cache = ResultCache(0, disk_dir=tmp_path / "cache")
        for index in range(4):
            cache.put(f"k{index}", {"v": index})
        removed = cache.prune(max_bytes=1)
        assert removed == 4
        assert cache.disk_usage() == (0, 0)

    def test_stats_report_disk_usage_only_with_a_disk_tier(self, tmp_path):
        plain = ResultCache(2)
        assert "disk_files" not in plain.stats()
        cache = ResultCache(2, disk_dir=tmp_path / "cache")
        cache.put("a", {"v": 1})
        stats = cache.stats()
        assert stats["disk_files"] == 1
        assert stats["disk_bytes"] > 0
        assert stats["disk_evictions"] == 0

    def test_rejects_nonpositive_disk_cap(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(2, disk_dir=tmp_path / "cache", disk_max_bytes=0)

    def test_cache_key_covers_every_dimension(self):
        base = make_cache_key("h", "randomized", 1, 0.25, {})
        assert make_cache_key("h", "randomized", 2, 0.25, {}) != base
        assert make_cache_key("h", "deterministic", 1, 0.25, {}) != base
        assert make_cache_key("h", "randomized", 1, 0.5, {}) != base
        assert make_cache_key("g", "randomized", 1, 0.25, {}) != base
        assert make_cache_key(
            "h", "randomized", 1, 0.25, {"verify": False}
        ) != base
        assert make_cache_key("h", "randomized", 1, 0.25, {}) == base


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_sheds_past_the_bound(self):
        admission = AdmissionController(2)
        assert admission.try_admit() is None
        assert admission.try_admit() is None
        assert admission.try_admit() == "shed"
        assert admission.shed_total == 1
        admission.release()
        assert admission.try_admit() is None

    def test_draining_refuses_new_work(self):
        admission = AdmissionController(2)
        assert admission.try_admit() is None
        admission.begin_drain()
        assert admission.try_admit() == "draining"
        assert admission.state() == "draining"
        admission.release()
        assert admission.state() == "drained"

    def test_release_underflow_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController(1).release()

    def test_wait_drained(self):
        async def scenario():
            admission = AdmissionController(2)
            admission.try_admit()
            admission.begin_drain()
            waiter = asyncio.get_running_loop().create_task(
                admission.wait_drained()
            )
            await asyncio.sleep(0)
            assert not waiter.done()
            admission.release()
            await asyncio.wait_for(waiter, 1)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Micro-batching
# ----------------------------------------------------------------------


def _pending(key="k"):
    return PendingRequest(
        key=key, instance_hash="h", payload={}, spec={"key": key},
        future=asyncio.get_running_loop().create_future(),
    )


class TestMicroBatcher:
    def test_size_bound_closes_batches(self):
        async def scenario():
            batches = []

            async def dispatch(batch):
                batches.append(len(batch))

            batcher = MicroBatcher(dispatch=dispatch, max_batch=3, linger=0.2)
            batcher.start()
            for _ in range(5):
                batcher.submit(_pending())
            await batcher.close()
            return batches

        # Five pre-queued items close a full batch of 3 immediately (the
        # size trigger) and the remaining 2 on the close flush.
        assert asyncio.run(scenario()) == [3, 2]

    def test_linger_closes_underfull_batches(self):
        async def scenario():
            batches = []

            async def dispatch(batch):
                batches.append(len(batch))

            batcher = MicroBatcher(
                dispatch=dispatch, max_batch=100, linger=0.02
            )
            batcher.start()
            batcher.submit(_pending())
            batcher.submit(_pending())
            await asyncio.sleep(0.1)  # linger expires with 2 of 100 slots
            assert batches == [2]
            await batcher.close()
            return batches

        assert asyncio.run(scenario()) == [2]

    def test_zero_linger_batches_only_whats_queued(self):
        async def scenario():
            batches = []

            async def dispatch(batch):
                batches.append(len(batch))

            batcher = MicroBatcher(dispatch=dispatch, max_batch=8, linger=0.0)
            batcher.start()
            batcher.submit(_pending())
            await asyncio.sleep(0.05)
            batcher.submit(_pending())
            batcher.submit(_pending())
            await batcher.close()
            return batches

        assert asyncio.run(scenario()) == [1, 2]

    def test_close_flushes_and_rejects_new_submissions(self):
        async def scenario():
            seen = []

            async def dispatch(batch):
                seen.extend(item.key for item in batch)

            batcher = MicroBatcher(dispatch=dispatch, max_batch=4, linger=0.5)
            batcher.start()
            batcher.submit(_pending("a"))
            batcher.submit(_pending("b"))
            await batcher.close()
            assert seen == ["a", "b"]
            with pytest.raises(BatcherClosed):
                batcher.submit(_pending("c"))

        asyncio.run(scenario())

    def test_submit_after_close_raises_typed_error_not_stranding(self):
        """A submit that loses the race against shutdown must fail with
        the typed :class:`BatcherClosed` — before the fix it enqueued
        behind the close sentinel and the item's future never resolved."""
        async def scenario():
            async def dispatch(batch):
                pass

            batcher = MicroBatcher(dispatch=dispatch, max_batch=4, linger=0.0)
            batcher.start()
            await batcher.close()
            late = _pending("late")
            with pytest.raises(BatcherClosed, match="draining"):
                batcher.submit(late)
            # The item never entered the queue: nothing owns its future,
            # so the caller (the connection handler) can resolve it.
            assert batcher.queued == 0
            assert not late.future.done()

        asyncio.run(scenario())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(dispatch=None, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(dispatch=None, linger=-1)


# ----------------------------------------------------------------------
# Loadgen percentile computation
# ----------------------------------------------------------------------


class TestPercentile:
    """Ceiling nearest-rank: the smallest value with at least the
    requested fraction of the sample at or below it.  The previous
    floor-truncating index systematically under-read the tail on small
    samples (p99 of 50 read index 48, not 49)."""

    def test_p99_of_50_is_the_maximum(self):
        from repro.serve.loadgen import _percentile

        values = [float(v) for v in range(1, 51)]
        # ceil(0.99 * 50) = 50 -> index 49.  The old floor rank read 49.0.
        assert _percentile(values, 0.99) == 50.0

    def test_hand_computed_small_samples(self):
        from repro.serve.loadgen import _percentile

        ten = [float(v) for v in range(1, 11)]
        # ceil(0.90 * 10) = 9 exactly — binary float noise
        # (0.9 * 10 == 9.000000000000002) must not bump the rank to 10.
        assert _percentile(ten, 0.90) == 9.0
        assert _percentile(ten, 0.50) == 5.0
        assert _percentile(ten, 0.99) == 10.0
        four = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(four, 0.50) == 2.0   # ceil(2.0) = 2 -> index 1
        five = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _percentile(five, 0.50) == 3.0   # ceil(2.5) = 3 -> index 2

    def test_degenerate_inputs(self):
        from repro.serve.loadgen import _percentile

        assert _percentile([], 0.99) == 0.0
        assert _percentile([7.5], 0.50) == 7.5
        assert _percentile([7.5], 0.99) == 7.5
        values = [1.0, 2.0, 3.0]
        assert _percentile(values, 1.0) == 3.0
        assert _percentile(values, 0.0) == 1.0  # rank clamps to the minimum


# ----------------------------------------------------------------------
# WorkerPool lifecycle (the campaign/serve shared refactor)
# ----------------------------------------------------------------------


class TestWorkerPool:
    def test_restart_and_rebuild_lifecycle(self):
        pool = WorkerPool(1, backoff=0.0)
        try:
            assert pool.submit(abs, -3).result(timeout=30) == 3
            pool.restart()
            assert pool.rebuilds == 0
            pool.rebuild()
            assert pool.rebuilds == 1
            assert pool.submit(abs, -4).result(timeout=30) == 4
        finally:
            pool.kill()

    def test_killed_pool_refuses_submissions(self):
        pool = WorkerPool(1, backoff=0.0)
        pool.kill()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(abs, -1)

    def test_context_manager_kills(self):
        with WorkerPool(1, backoff=0.0) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.executor


# ----------------------------------------------------------------------
# Server end-to-end (unix sockets, jobs=0 inline execution)
# ----------------------------------------------------------------------


@asynccontextmanager
async def serving(tmp_path, **overrides):
    options = {"jobs": 0, "linger_ms": 1.0}
    options.update(overrides)
    config = ServeConfig(unix_path=str(tmp_path / "serve.sock"), **options)
    server = ColoringServer(config)
    await server.start()
    client = ServeClient(unix_path=config.unix_path)
    await client.connect()
    try:
        yield server, client
    finally:
        await client.close()
        await server.close()


def slow_runner(specs, instances):
    time.sleep(0.2)
    return [
        {"key": spec["key"], "result": {"colors": [0], "num_colors": 1}}
        for spec in specs
    ]


class TestServerEndToEnd:
    def test_color_matches_direct_call_and_caches(self, tmp_path, instance, payload):
        direct = delta_color_deterministic(
            instance.network, params=AlgorithmParameters(epsilon=EPSILON)
        )

        async def scenario():
            async with serving(tmp_path) as (server, client):
                first = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                assert first["ok"] and first["cached"] is False
                assert first["result"]["colors"] == direct.colors
                assert first["result"]["num_colors"] == direct.num_colors
                again = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON,
                    "instance_hash": first["instance_hash"],
                })
                assert again["cached"] is True
                assert again["result"]["colors"] == direct.colors
                assert server.cache.stats()["hits"] == 1

        asyncio.run(scenario())

    def test_include_colors_false_keeps_digest(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                    "include_colors": False,
                })
                assert response["ok"]
                assert "colors" not in response["result"]
                assert len(response["result"]["colors_sha256"]) == 64

        asyncio.run(scenario())

    def test_register_then_color_by_hash(self, tmp_path, instance, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                assert registered["ok"]
                assert registered["instance_hash"] == instance.canonical_hash()
                response = await client.request({
                    "op": "color", "method": "randomized", "seed": 7,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                assert response["ok"]

        asyncio.run(scenario())

    def test_columnar_engine_response_byte_identical(self, tmp_path, payload):
        """The ``engine`` option may only change execution speed: a
        columnar-backed ``color`` must produce exactly the result payload
        the fast engine produces (responses differ only in request id)."""
        async def scenario():
            async with serving(tmp_path) as (_, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized", "seed": 7,
                    "epsilon": EPSILON, "no_cache": True,
                    "instance_hash": registered["instance_hash"],
                }
                fast = await client.request(
                    {**body, "options": {"engine": "fast"}}
                )
                columnar = await client.request(
                    {**body, "options": {"engine": "columnar"}}
                )
                plain = await client.request(body)
                assert fast["ok"] and columnar["ok"] and plain["ok"]
                encoded = [
                    json.dumps(r["result"], sort_keys=True)
                    for r in (fast, columnar, plain)
                ]
                assert encoded[0] == encoded[1] == encoded[2]

        asyncio.run(scenario())

    def test_color_rejects_unknown_engine_option(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                    "options": {"engine": "turbo"},
                })
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"

        asyncio.run(scenario())

    def test_unknown_instance_hash(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "instance_hash": "feed" * 16,
                })
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown_instance"

        asyncio.run(scenario())

    def test_concurrent_requests_coalesce_into_batches(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, max_batch=8, linger_ms=20.0
            ) as (server, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                responses = await asyncio.gather(*(
                    client.request({
                        "op": "color", "method": "randomized", "seed": seed,
                        "epsilon": EPSILON, "include_colors": False,
                        "instance_hash": registered["instance_hash"],
                    })
                    for seed in range(6)
                ))
                assert all(r["ok"] for r in responses)
                assert max(r["batch_size"] for r in responses) >= 4
                assert server.batcher.batches_dispatched < 6

        asyncio.run(scenario())

    def test_identical_requests_dedupe_within_a_batch(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, max_batch=4, linger_ms=20.0
            ) as (server, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized", "seed": 5,
                    "epsilon": EPSILON, "include_colors": True,
                    "instance_hash": registered["instance_hash"],
                }
                a, b = await asyncio.gather(
                    client.request({**body, "id": "a"}),
                    client.request({**body, "id": "b"}),
                )
                assert a["ok"] and b["ok"]
                assert a["result"]["colors"] == b["result"]["colors"]
                assert server.cache.stats()["size"] == 1

        asyncio.run(scenario())

    def test_malformed_line_keeps_connection_usable(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                # The error response has id null; it must not poison the
                # id-matched requests that follow.
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                assert response["ok"]

        asyncio.run(scenario())

    def test_internal_error_is_per_request(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                # epsilon too small for Delta=8: the ACD has sparse
                # vertices and Theorem 1 refuses (NotDenseError).
                bad = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": 0.0625, "instance": payload,
                })
                assert bad["ok"] is False
                assert bad["error"]["code"] == "internal"
                assert bad["error"]["type"] == "NotDenseError"
                good = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                assert good["ok"]

        asyncio.run(scenario())


class TestServerOverload:
    def test_sheds_past_queue_bound(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, max_queue=1, max_batch=1, linger_ms=0.0,
                batch_runner=slow_runner, cache_size=0,
            ) as (server, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized",
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                first = asyncio.get_running_loop().create_task(
                    client.request({**body, "seed": 1, "id": "first"})
                )
                await asyncio.sleep(0.05)  # first now occupies the bound
                shed = await client.request({**body, "seed": 2, "id": "shed"})
                assert shed["ok"] is False
                assert shed["error"]["code"] == "shed"
                assert server.admission.shed_total == 1
                assert (await first)["ok"]

        asyncio.run(scenario())

    def test_deadline_expires_before_execution(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, max_batch=1, linger_ms=0.0,
                batch_runner=slow_runner, cache_size=0,
            ) as (_, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized",
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                # The first request occupies the single dispatch slot for
                # 200ms; the second's 50ms deadline expires while queued.
                first = asyncio.get_running_loop().create_task(
                    client.request({**body, "seed": 1, "id": "first"})
                )
                await asyncio.sleep(0.05)
                late = await client.request(
                    {**body, "seed": 2, "id": "late", "deadline_ms": 50}
                )
                assert late["ok"] is False
                assert late["error"]["code"] == "deadline"
                assert (await first)["ok"]

        asyncio.run(scenario())

    def test_drain_completes_in_flight_then_refuses(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, max_batch=1, linger_ms=0.0,
                batch_runner=slow_runner, cache_size=0,
            ) as (server, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                body = {
                    "op": "color", "method": "randomized",
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                }
                loop = asyncio.get_running_loop()
                in_flight = loop.create_task(
                    client.request({**body, "seed": 1, "id": "inflight"})
                )
                await asyncio.sleep(0.05)
                done_order = []
                in_flight.add_done_callback(
                    lambda _: done_order.append("color")
                )
                drain = loop.create_task(
                    client.request({"op": "drain", "id": "drain"})
                )
                drain.add_done_callback(lambda _: done_order.append("drain"))
                drained = await drain
                assert drained["ok"] and drained["drained"] is True
                assert (await in_flight)["ok"]
                assert done_order == ["color", "drain"]
                refused = await client.request(
                    {**body, "seed": 3, "id": "after"}
                )
                assert refused["error"]["code"] == "draining"
                assert server.admission.state() == "drained"

        asyncio.run(scenario())

    def test_sigterm_style_drain_stops_the_server(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (server, _):
                server._on_signal()
                await asyncio.wait_for(server.wait_stopped(), 2)
                assert server.admission.draining

        asyncio.run(scenario())

    def test_signal_drain_task_is_retained_and_deduplicated(self, tmp_path):
        # Regression: the drain task handle must be stored — the event
        # loop holds only a weak reference, so a bare create_task could
        # be garbage-collected mid-drain — and a repeat SIGTERM while a
        # drain is in flight must not spawn a second drain task.
        async def scenario():
            async with serving(tmp_path) as (server, _):
                server._on_signal()
                first = server._drain_task
                assert first is not None
                server._on_signal()
                assert server._drain_task is first
                await asyncio.wait_for(server.wait_stopped(), 2)

        asyncio.run(scenario())


def crashing_runner(specs, instances):
    import os

    os._exit(13)


class TestCrashIsolation:
    def test_worker_crash_fails_request_not_server(self, tmp_path, payload):
        async def scenario():
            async with serving(
                tmp_path, jobs=1, backoff=0.0, dispatch_retries=1,
                batch_runner=crashing_runner, cache_size=0,
            ) as (server, client):
                registered = await client.request(
                    {"op": "register", "instance": payload}
                )
                response = await client.request({
                    "op": "color", "method": "randomized", "seed": 1,
                    "epsilon": EPSILON,
                    "instance_hash": registered["instance_hash"],
                })
                assert response["ok"] is False
                assert response["error"]["code"] == "internal"
                assert server.pool_rebuilds >= 1
                health = await client.request({"op": "health"})
                assert health["ok"]

        asyncio.run(scenario())


class TestOps:
    def test_status_health_metrics(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                health = await client.request({"op": "health"})
                assert health["status"] == "ok"
                await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                status = await client.request({"op": "status"})
                assert status["state"] == "accepting"
                assert status["admitted_total"] == 1
                assert status["cache"]["misses"] == 1
                assert status["batches"]["dispatched"] == 1
                metrics = await client.request({"op": "metrics"})
                counters = metrics["metrics"]["counters"]
                assert counters["serve.completed"] == 1
                assert counters["serve.cache_miss"] == 1
                # Pressure gauges: sampled at answer time, so an idle
                # server reports zero for both, and the gauges always
                # mirror the status fields they are sampled from.
                gauges = metrics["metrics"]["gauges"]
                assert gauges["serve.in_flight"] == 0.0
                assert gauges["serve.queue_depth"] == 0.0
                assert gauges["serve.in_flight"] == float(
                    metrics["server"]["depth"]
                )
                assert gauges["serve.queue_depth"] == float(
                    metrics["server"]["queued"]
                )

        asyncio.run(scenario())

    def test_metrics_in_flight_gauge_sees_pressure(self, tmp_path, payload):
        """The in_flight gauge reflects admitted-but-unfinished work."""
        release = threading.Event()

        def stalling_runner(specs, instances):
            release.wait(timeout=10.0)
            return execute_batch(specs, instances)

        async def scenario():
            async with serving(
                tmp_path, batch_runner=stalling_runner
            ) as (_, client):
                task = asyncio.create_task(client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                }))
                try:
                    for _ in range(200):
                        metrics = await client.request({"op": "metrics"})
                        gauges = metrics["metrics"]["gauges"]
                        if gauges.get("serve.in_flight", 0.0) >= 1.0:
                            break
                        await asyncio.sleep(0.01)
                    else:
                        raise AssertionError(
                            "in_flight gauge never saw the stalled request"
                        )
                finally:
                    release.set()
                response = await task
                assert response["ok"] is True
                metrics = await client.request({"op": "metrics"})
                assert metrics["metrics"]["gauges"]["serve.in_flight"] == 0.0

        asyncio.run(scenario())

    def test_disk_cache_survives_server_restart(self, tmp_path, payload):
        cache_dir = str(tmp_path / "results")

        async def first_run():
            async with serving(
                tmp_path, cache_dir=cache_dir
            ) as (_, client):
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                assert response["cached"] is False
                return response["result"]["colors"]

        async def second_run():
            async with serving(
                tmp_path, cache_dir=cache_dir
            ) as (_, client):
                response = await client.request({
                    "op": "color", "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                })
                assert response["cached"] is True
                return response["result"]["colors"]

        assert asyncio.run(first_run()) == asyncio.run(second_run())

    def test_register_requires_instance(self, tmp_path):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                response = await client.request({"op": "register"})
                assert response["ok"] is False
                assert response["error"]["code"] == "bad_request"

        asyncio.run(scenario())

    def test_baseline_method(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (_, client):
                response = await client.request({
                    "op": "color", "method": "baseline-dplus1",
                    "instance": payload,
                })
                assert response["ok"]
                assert response["result"]["num_colors"] == payload["delta"] + 1

        asyncio.run(scenario())


class TestEncodingRoundTrip:
    def test_responses_are_single_json_lines(self, tmp_path, payload):
        async def scenario():
            async with serving(tmp_path) as (server, _):
                reader, writer = await asyncio.open_unix_connection(
                    server.config.unix_path
                )
                writer.write(json.dumps({
                    "op": "color", "id": 9, "method": "deterministic",
                    "epsilon": EPSILON, "instance": payload,
                }).encode() + b"\n")
                await writer.drain()
                line = await reader.readline()
                assert line.endswith(b"\n")
                body = json.loads(line)
                assert body["id"] == 9 and body["ok"]
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())
