"""Tests for Algorithm 2's phases (Lemmas 10-17)."""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.core import (
    classify_cliques,
    color_slack_pairs,
    compute_balanced_matching,
    finish_hard_cliques,
    form_slack_triads,
    sparsify_matching,
)
from repro.constants import AlgorithmParameters
from repro.errors import InvariantViolation
from repro.graphs import hard_clique_graph
from repro.local import RoundLedger
from repro.verify import (
    check_lemma12,
    check_lemma13,
    check_lemma15,
    check_lemma16,
)

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def pipeline(hard_instance, hard_acd):
    """One full hard-phase pipeline, shared across the module's tests."""
    network = hard_instance.network
    classification = classify_cliques(network, hard_acd)
    ledger = RoundLedger()
    balanced = compute_balanced_matching(
        network, classification, params=PARAMS, ledger=ledger
    )
    sparsified = sparsify_matching(
        network, classification, balanced, params=PARAMS, ledger=ledger
    )
    triads, triad_stats = form_slack_triads(
        network, classification, sparsified, params=PARAMS, ledger=ledger
    )
    return {
        "network": network,
        "classification": classification,
        "balanced": balanced,
        "sparsified": sparsified,
        "triads": triads,
        "triad_stats": triad_stats,
        "ledger": ledger,
    }


class TestPhase1:
    def test_lemma11_ratio(self, pipeline):
        stats = pipeline["balanced"].stats
        assert stats["min_degree_H"] > stats["rank_H"]
        assert stats["heg_ratio"] > 1.1

    def test_lemma12(self, pipeline):
        check_lemma12(
            pipeline["network"], pipeline["classification"], pipeline["balanced"]
        )

    def test_all_cliques_are_type1_on_all_hard_instance(self, pipeline):
        assert len(pipeline["balanced"].type1) == 34
        assert not pipeline["balanced"].type2

    def test_f2_heads_and_tails_in_different_cliques(self, pipeline):
        owner = {
            v: index
            for index, members in enumerate(
                pipeline["classification"].acd.cliques
            )
            for v in members
        }
        for tail, head in pipeline["balanced"].edges:
            assert owner[tail] != owner[head]

    def test_f1_is_maximal_matching(self, pipeline, hard_instance):
        f1 = pipeline["balanced"].f1
        used = {v for edge in f1 for v in edge}
        assert len(used) == 2 * len(f1)
        owner = hard_instance.clique_of()
        for u, v in hard_instance.network.edges():
            if owner[u] != owner[v]:
                assert u in used or v in used


class TestPhase2:
    def test_lemma13(self, pipeline):
        check_lemma13(
            pipeline["network"],
            pipeline["classification"],
            pipeline["sparsified"],
            params=PARAMS,
            strict_incoming=False,
        )

    def test_exactly_two_outgoing(self, pipeline):
        owner = {
            v: index
            for index, members in enumerate(
                pipeline["classification"].acd.cliques
            )
            for v in members
        }
        outgoing: dict[int, int] = {}
        for tail, _ in pipeline["sparsified"].edges:
            outgoing[owner[tail]] = outgoing.get(owner[tail], 0) + 1
        assert all(count == 2 for count in outgoing.values())
        assert len(outgoing) == 34

    def test_f3_subset_of_f2(self, pipeline):
        assert set(pipeline["sparsified"].edges) <= set(
            pipeline["balanced"].edges
        )

    def test_stats_recorded(self, pipeline):
        stats = pipeline["sparsified"].stats
        assert stats["f3_size"] == 2 * 34
        assert "worst_incoming" in stats


class TestPhase3:
    def test_lemma15(self, pipeline):
        check_lemma15(
            pipeline["network"], pipeline["classification"], pipeline["triads"]
        )

    def test_one_triad_per_clique(self, pipeline):
        assert len(pipeline["triads"]) == 34
        assert len({t.clique for t in pipeline["triads"]}) == 34

    def test_stats(self, pipeline):
        assert pipeline["triad_stats"]["num_triads"] == 34


class TestPhase4:
    def test_lemma16_degree_bound(self, pipeline, hard_instance):
        measured = check_lemma16(
            pipeline["network"], pipeline["triads"], hard_instance.delta
        )
        assert measured <= hard_instance.delta - 2

    def test_pairs_same_colored(self, pipeline, hard_instance):
        ledger = RoundLedger()
        palette = list(range(hard_instance.delta))
        assignment, stats = color_slack_pairs(
            pipeline["network"], pipeline["triads"], palette, ledger=ledger
        )
        for triad in pipeline["triads"]:
            w, v = triad.pair
            assert assignment[w] == assignment[v]
        assert ledger.total_rounds > 0

    def test_pair_coloring_respects_existing_colors(self, pipeline, hard_instance):
        network = pipeline["network"]
        existing: list[int | None] = [None] * network.n
        # Forbid color 0 everywhere by coloring nothing but shrinking
        # the palette instead; also exercise the existing_colors path by
        # pre-coloring one non-pair vertex.
        triad_vertices = {v for t in pipeline["triads"] for v in t.vertices}
        outsider = next(
            v for v in range(network.n) if v not in triad_vertices
        )
        existing[outsider] = 3
        palette = list(range(1, hard_instance.delta))
        assignment, _ = color_slack_pairs(
            pipeline["network"], pipeline["triads"], palette,
            existing_colors=existing, ledger=RoundLedger(),
        )
        for vertex, color in assignment.items():
            assert color >= 1
            if outsider in network.neighbor_set(vertex):
                assert color != 3

    def test_finish_colors_everything(self, pipeline, hard_instance):
        network = pipeline["network"]
        palette = list(range(hard_instance.delta))
        colors: list[int | None] = [None] * network.n
        assignment, _ = color_slack_pairs(
            network, pipeline["triads"], palette, ledger=RoundLedger()
        )
        for vertex, color in assignment.items():
            colors[vertex] = color
        finish_hard_cliques(
            network, pipeline["classification"], pipeline["triads"],
            colors, palette, ledger=RoundLedger(),
        )
        assert all(c is not None for c in colors)
        for u, v in network.edges():
            if colors[u] == colors[v]:
                # Same color is only legal for the non-adjacent pairs.
                assert v not in network.neighbor_set(u)


class TestParameterEdgeCases:
    def test_tiny_delta_rejected_when_unsplittable(self):
        instance = hard_clique_graph(18, 8)
        acd = compute_acd(instance.network, epsilon=0.3)
        classification = classify_cliques(instance.network, acd)
        params = AlgorithmParameters(epsilon=0.3)
        # Delta = 8 cliques still admit q >= 2 here; the call must either
        # succeed or raise the explicit InvariantViolation, never produce
        # an invalid matching.
        try:
            balanced = compute_balanced_matching(
                instance.network, classification, params=params
            )
        except InvariantViolation:
            return
        check_lemma12(instance.network, classification, balanced)
