"""Tests for the repro.obs observability subsystem.

Covers the span API (nesting, sibling merging, ledger attribution), the
metrics registry, the zero-overhead disabled path (no collector ->
no allocation, shared null-span singleton, untouched engine runs), the
telemetry document + schema validation, the exporters, campaign
telemetry summaries, and the ``repro trace`` CLI command.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.local import Network, RoundLedger
from repro.obs import (
    NULL_SPAN,
    Collector,
    MetricsRegistry,
    active_collector,
    events_jsonl,
    install,
    metric_count,
    metric_gauge,
    metric_observe,
    observed,
    phase_tree,
    render_phase_tree,
    schema_errors,
    span,
    telemetry_document,
    telemetry_summary,
    uninstall,
    validate_document,
)
from repro.obs import _runtime


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    """Every test starts and ends with observability disabled."""
    uninstall()
    yield
    uninstall()


def flood_network(n: int = 5) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def run_flood(network: Network):
    from tests.test_local_network import Flood

    return network.run(Flood())


class TestSpans:
    def test_disabled_span_is_the_shared_singleton(self):
        assert span("anything") is NULL_SPAN
        assert span("other", ledger=RoundLedger(), scale=3) is NULL_SPAN
        with span("scoped") as record:
            assert record is NULL_SPAN

    def test_span_tree_nesting(self):
        with observed() as collector:
            with span("outer"):
                with span("outer/inner"):
                    pass
                with span("outer/other"):
                    pass
        roots = collector.root.children
        assert [r.label for r in roots] == ["outer"]
        assert [c.label for c in roots[0].children] == [
            "outer/inner", "outer/other",
        ]

    def test_sibling_spans_with_equal_labels_merge(self):
        with observed() as collector:
            for _ in range(3):
                with span("phase"):
                    pass
        (record,) = collector.root.children
        assert record.count == 3

    def test_ledger_attribution(self):
        ledger = RoundLedger()
        with observed() as collector:
            ledger.charge("before", 100, 7)  # outside: not attributed
            with span("hard", ledger=ledger):
                ledger.charge("hard/phase1", 5, 10)
                ledger.charge("hard/phase2", 6, 20)
        (record,) = collector.root.children
        assert record.rounds == 11
        assert record.messages == 30

    def test_nested_ledger_attribution_is_inclusive(self):
        ledger = RoundLedger()
        with observed() as collector:
            with span("hard", ledger=ledger):
                with span("hard/phase1", ledger=ledger):
                    ledger.charge("hard/phase1", 5, 10)
        outer = collector.root.children[0]
        inner = outer.children[0]
        assert inner.rounds == 5
        assert outer.rounds == 5  # parent includes the child's charges

    def test_span_records_wall_time_and_scale(self):
        with observed() as collector:
            with span("scaled", scale=7):
                pass
        (record,) = collector.root.children
        assert record.scale == 7
        assert record.wall_seconds >= 0.0

    def test_span_stack_unwinds_on_exception(self):
        with observed() as collector:
            with pytest.raises(RuntimeError, match="boom"):
                with span("failing"):
                    raise RuntimeError("boom")
            assert collector.current_span is collector.root


class TestMetrics:
    def test_disabled_metrics_are_noops(self):
        metric_count("c")
        metric_gauge("g", 5)
        metric_observe("h", 1.5)
        assert active_collector() is None

    def test_counter_gauge_histogram(self):
        with observed() as collector:
            metric_count("c")
            metric_count("c", 4)
            metric_gauge("g", 5)
            metric_gauge("g", 9)
            metric_observe("h", 2)
            metric_observe("h", 6)
        table = collector.registry.as_dict()
        assert table["counters"] == {"c": 5}
        assert table["gauges"] == {"g": 9}
        assert table["histograms"]["h"] == {
            "count": 2, "total": 8.0, "min": 2, "max": 6, "mean": 4.0,
        }

    def test_empty_registry(self):
        registry = MetricsRegistry()
        assert registry.is_empty
        assert registry.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestZeroOverheadDisabled:
    def test_no_tracer_allocated_without_collector(self, monkeypatch):
        from repro.local import trace

        instantiated = []
        original = trace.Tracer.__init__

        def counting(self, *args, **kwargs):
            instantiated.append(self)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(trace.Tracer, "__init__", counting)
        run_flood(flood_network())
        assert instantiated == []

    def test_run_results_identical_with_and_without_collector(self):
        baseline = run_flood(flood_network())
        with observed():
            observed_result = run_flood(flood_network())
        assert observed_result == baseline

    def test_no_samples_stored_unless_requested(self):
        with observed(keep_samples=False) as collector:
            with span("run"):
                run_flood(flood_network())
        (record,) = collector.root.children
        assert record.samples == []
        assert record.executed_rounds > 0  # aggregates still flow

    def test_sample_rounds_off_skips_tracers_entirely(self, monkeypatch):
        from repro.local import trace

        instantiated = []
        original = trace.Tracer.__init__

        def counting(self, *args, **kwargs):
            instantiated.append(self)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(trace.Tracer, "__init__", counting)
        with observed(sample_rounds=False):
            run_flood(flood_network())
        assert instantiated == []


class TestCollector:
    def test_engine_runs_attach_to_innermost_span(self):
        with observed() as collector:
            with span("outer"):
                with span("outer/inner"):
                    result = run_flood(flood_network())
        inner = collector.root.children[0].children[0]
        assert inner.runs == 1
        assert inner.sim_rounds == result.rounds
        assert inner.sim_messages == result.messages
        assert collector.total_runs == 1

    def test_caller_supplied_tracer_not_double_counted(self):
        from repro.local import Tracer
        from tests.test_local_network import Flood

        tracer = Tracer()
        with observed() as collector:
            flood_network().run(Flood(), tracer=tracer)
        assert collector.root.runs == 1
        assert collector.root.executed_rounds == 0  # caller owns samples
        assert tracer.samples

    def test_keep_samples_caps_at_max(self):
        with observed(keep_samples=True, max_samples=2) as collector:
            with span("run"):
                run_flood(flood_network(6))
        (record,) = collector.root.children
        assert len(record.samples) == 2
        assert record.dropped_samples > 0

    def test_install_uninstall(self):
        collector = install()
        assert active_collector() is collector
        uninstall()
        assert active_collector() is None

    def test_observed_restores_previous_collector(self):
        outer = install()
        with observed() as inner:
            assert active_collector() is inner
        assert active_collector() is outer

    def test_fault_metrics_recorded(self):
        from repro.local import FaultPlan
        from tests.test_local_network import Flood

        with observed() as collector:
            flood_network().run(
                Flood(), faults=FaultPlan(crashes=((2, 1),))
            )
        counters = collector.registry.as_dict()["counters"]
        assert counters["engine.crashed_nodes"] == 1
        assert counters["engine.dropped_messages"] >= 1


class TestExport:
    def coloring_document(self):
        from repro.constants import AlgorithmParameters
        from repro.core.deterministic import delta_color_deterministic
        from repro.graphs import mixed_dense_graph

        instance = mixed_dense_graph(34, 16, easy_fraction=0.3, seed=5)
        with observed(record_events=True) as collector:
            result = delta_color_deterministic(
                instance.network, params=AlgorithmParameters(epsilon=0.25)
            )
        return collector, result

    def test_phase_tree_sums_to_ledger_totals(self):
        ledger = RoundLedger()
        ledger.charge("hard/phase1/mm", 3, 10)
        ledger.charge("hard/phase1/heg", 4, 20)
        ledger.charge("hard/phase2/split", 5, 0)
        ledger.charge("easy", 2, 7)
        roots = phase_tree(ledger)
        assert {n["label"]: n["rounds"] for n in roots} == ledger.breakdown()
        assert sum(n["rounds"] for n in roots) == ledger.total_rounds
        assert sum(n["messages"] for n in roots) == ledger.total_messages
        hard = next(n for n in roots if n["label"] == "hard")
        phase1 = next(
            c for c in hard["children"] if c["label"] == "phase1"
        )
        assert phase1["rounds"] == 7
        assert phase1["path"] == "hard/phase1"

    def test_document_validates_and_sums(self):
        collector, result = self.coloring_document()
        document = telemetry_document(collector, result=result)
        validate_document(document)
        assert document["total_rounds"] == result.ledger.total_rounds
        assert (
            sum(node["rounds"] for node in document["phases"])
            == result.ledger.total_rounds
        )
        assert document["breakdown"] == result.ledger.breakdown()
        assert document["engine"]["runs"] == collector.total_runs

    def test_document_reproduces_e7_labels(self):
        collector, result = self.coloring_document()
        document = telemetry_document(collector, result=result)
        assert set(document["breakdown"]) == {
            "acd", "classify", "hard", "easy",
        }
        paths = set()

        def walk(nodes):
            for node in nodes:
                paths.add(node["path"])
                walk(node["children"])

        walk(document["phases"])
        assert "hard/phase1/maximal-matching" in paths
        assert "hard/phase2/degree-splitting" in paths
        assert "hard/phase4a/pair-coloring" in paths

    def test_render_phase_tree(self):
        collector, result = self.coloring_document()
        document = telemetry_document(collector, result=result)
        text = render_phase_tree(document)
        lines = text.splitlines()
        assert "deterministic-delta-coloring" in lines[0]
        assert any("degree-splitting" in line for line in lines)
        assert lines[-1].startswith("TOTAL")
        assert str(result.ledger.total_rounds) in lines[-1]

    def test_summary_is_wall_free_and_consistent(self):
        collector, result = self.coloring_document()
        summary = telemetry_summary(collector, result.ledger)
        assert "wall" not in json.dumps(summary)
        assert summary["total_rounds"] == result.ledger.total_rounds
        assert (
            sum(p["rounds"] for p in summary["phases"].values())
            == summary["total_rounds"]
        )
        assert (
            sum(p["messages"] for p in summary["phases"].values())
            == summary["total_messages"]
        )

    def test_events_jsonl_stream(self):
        collector, _ = self.coloring_document()
        lines = list(events_jsonl(collector))
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "begin"
        assert events[-1]["event"] == "end"
        kinds = {event["event"] for event in events}
        assert {"span_enter", "span_exit", "run", "metrics"} <= kinds
        exits = [e for e in events if e["event"] == "span_exit"]
        acd_exit = next(e for e in exits if e["label"] == "acd")
        assert acd_exit["rounds"] == 6


class TestSchema:
    def minimal_document(self):
        collector = Collector()
        return telemetry_document(collector, ledger=RoundLedger())

    def test_minimal_document_is_valid(self):
        validate_document(self.minimal_document())

    def test_missing_required_key(self):
        document = self.minimal_document()
        del document["engine"]
        errors = schema_errors(document)
        assert any("engine" in error for error in errors)

    def test_wrong_type_detected(self):
        document = self.minimal_document()
        document["total_rounds"] = "many"
        errors = schema_errors(document)
        assert any("total_rounds" in error for error in errors)

    def test_bool_is_not_an_integer(self):
        document = self.minimal_document()
        document["total_rounds"] = True
        assert schema_errors(document)

    def test_negative_minimum_detected(self):
        document = self.minimal_document()
        document["total_messages"] = -1
        assert any("minimum" in e for e in schema_errors(document))

    def test_unknown_version_detected(self):
        document = self.minimal_document()
        document["version"] = 99
        assert any("version" in e for e in schema_errors(document))

    def test_inconsistent_phase_sum_rejected(self):
        ledger = RoundLedger()
        ledger.charge("a", 5)
        document = telemetry_document(Collector(), ledger=ledger)
        document["total_rounds"] = 6  # break the invariant
        with pytest.raises(ValueError, match="sum"):
            validate_document(document)

    def test_breakdown_disagreement_rejected(self):
        ledger = RoundLedger()
        ledger.charge("a", 5)
        document = telemetry_document(Collector(), ledger=ledger)
        document["breakdown"] = {"a": 4, "b": 1}
        with pytest.raises(ValueError, match="breakdown"):
            validate_document(document)


class TestCampaignTelemetry:
    def cells(self):
        from repro.runner import CampaignCell

        return [
            CampaignCell(
                label="det", workload="mixed", num_cliques=34, delta=16,
                easy_fraction=0.3, graph_seed=5, epsilon=0.25,
                method="deterministic",
            ),
        ]

    def test_rows_carry_deterministic_summaries(self):
        from repro.runner import run_campaign

        first = run_campaign(self.cells(), telemetry=True)
        second = run_campaign(self.cells(), telemetry=True)
        assert json.dumps(first.rows) == json.dumps(second.rows)
        summary = first.rows[0]["telemetry"]
        assert summary["total_rounds"] == first.rows[0]["rounds"]
        assert summary["breakdown"] == first.rows[0]["breakdown"]

    def test_telemetry_is_opt_in(self):
        from repro.runner import run_campaign

        result = run_campaign(self.cells())
        assert "telemetry" not in result.rows[0]

    def test_cell_run_leaves_observability_disabled(self):
        from repro.runner import run_campaign

        run_campaign(self.cells(), telemetry=True)
        assert _runtime.ACTIVE is None


class TestTraceCli:
    def trace(self, *extra):
        return main(
            ["trace", "--kind", "mixed", "--cliques", "34", "--delta",
             "16", "--easy-fraction", "0.3", "--graph-seed", "5",
             "--epsilon", "0.25", *extra]
        )

    def test_text_tree(self, capsys):
        assert self.trace() == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "degree-splitting" in out

    def test_json_document_validates(self, capsys):
        assert self.trace("--json") == 0
        document = json.loads(capsys.readouterr().out)
        validate_document(document)
        assert (
            sum(node["rounds"] for node in document["phases"])
            == document["total_rounds"]
        )
        assert document["context"]["method"] == "deterministic"

    def test_json_to_file_and_events(self, tmp_path, capsys):
        doc_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        assert self.trace(
            "--json", str(doc_path), "--events", str(events_path)
        ) == 0
        document = json.loads(doc_path.read_text())
        validate_document(document)
        lines = events_path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "begin"
        assert json.loads(lines[-1])["event"] == "end"
        # The text tree still prints when --json goes to a file.
        assert "TOTAL" in capsys.readouterr().out

    def test_randomized_method(self, capsys):
        assert self.trace("--method", "randomized", "--seed", "3") == 0
        assert "randomized" in capsys.readouterr().out

    def test_instance_file(self, tmp_path, capsys):
        instance_path = tmp_path / "g.json"
        assert main(
            ["generate", "--kind", "mixed", "--cliques", "34", "--delta",
             "16", "--easy-fraction", "0.3", "--seed", "5",
             "-o", str(instance_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", str(instance_path), "--epsilon", "0.25"]
        ) == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_trace_leaves_observability_disabled(self):
        self.trace()
        assert _runtime.ACTIVE is None
