"""Tests for the Linial–Saks network decomposition."""

from __future__ import annotations

import math

import pytest

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines.network_decomposition import (
    Decomposition,
    decomposition_list_coloring,
    network_decomposition,
    verify_decomposition,
)
from tests.conftest import random_network


def long_cycle(n: int, chord: int = 0) -> Network:
    edges = [(i, (i + 1) % n) for i in range(n)]
    if chord:
        edges += [(i, (i + chord) % n) for i in range(n)]
    return Network.from_edges(n, edges)


class TestDecomposition:
    def test_random_graph(self):
        net = random_network(200, 600, seed=1)
        decomposition = network_decomposition(net, seed=1)
        verify_decomposition(net, decomposition)
        assert decomposition.num_colors >= 1

    def test_weak_diameter_logarithmic(self):
        net = long_cycle(400)
        decomposition = network_decomposition(net, seed=2)
        bound = 4 * 2 * math.ceil(2 * math.log(400) / math.log(2))
        assert decomposition.max_weak_diameter <= bound

    def test_high_diameter_graph_gets_many_clusters(self):
        net = long_cycle(500)
        decomposition = network_decomposition(net, seed=3)
        assert len(decomposition.clusters()) > 5

    def test_every_vertex_clustered(self):
        net = long_cycle(300, chord=17)
        decomposition = network_decomposition(net, seed=4)
        assert all(c != -1 for c in decomposition.cluster_of)

    def test_same_color_clusters_non_adjacent(self):
        net = long_cycle(300)
        decomposition = network_decomposition(net, seed=5)
        for u, v in net.edges():
            if decomposition.cluster_of[u] != decomposition.cluster_of[v]:
                assert decomposition.color_of[u] != decomposition.color_of[v]

    def test_seeded_reproducibility(self):
        net = long_cycle(200)
        a = network_decomposition(net, seed=6)
        b = network_decomposition(net, seed=6)
        assert a.cluster_of == b.cluster_of

    def test_empty_network(self):
        net = Network.from_edges(0, [])
        decomposition = network_decomposition(net, seed=0)
        assert decomposition.num_colors == 0

    def test_bad_p_rejected(self):
        net = long_cycle(10)
        with pytest.raises(SubroutineError):
            network_decomposition(net, seed=0, p=1.5)

    def test_verify_catches_touching_clusters(self):
        net = Network.from_edges(2, [(0, 1)])
        fake = Decomposition(
            cluster_of=[0, 1], color_of=[0, 0], num_colors=1,
            max_weak_diameter=0, rounds=0,
        )
        with pytest.raises(SubroutineError, match="touch"):
            verify_decomposition(net, fake)


class TestDecompositionColoring:
    def test_proper_on_cycle(self):
        net = long_cycle(300, chord=9)
        lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]
        colors, result = decomposition_list_coloring(net, lists, seed=1)
        assert all(colors[u] != colors[v] for u, v in net.edges())
        assert result.rounds > 0

    def test_respects_lists(self):
        net = long_cycle(100)
        lists = [[10 + v % 3, 20 + v % 3, 30] for v in range(net.n)]
        colors, _ = decomposition_list_coloring(net, lists, seed=2)
        for v in range(net.n):
            assert colors[v] in lists[v]

    def test_reuses_precomputed_decomposition(self):
        net = long_cycle(150)
        decomposition = network_decomposition(net, seed=3)
        lists = [list(range(3)) for _ in range(net.n)]
        colors, _ = decomposition_list_coloring(
            net, lists, decomposition=decomposition
        )
        assert all(colors[u] != colors[v] for u, v in net.edges())

    def test_undersized_lists_rejected(self):
        net = long_cycle(20)
        with pytest.raises(SubroutineError):
            decomposition_list_coloring(net, [[0] for _ in range(20)], seed=0)
