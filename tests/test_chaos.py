"""Tests for repro.serve.chaos: seeded schedules and E2E fault injection."""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.errors import ReproError
from repro.graphs import hard_clique_graph
from repro.serve import (
    ChaosPlan,
    ChaosProxy,
    ColoringServer,
    Endpoint,
    ResilientClient,
    RetryPolicy,
    ServeConfig,
    fault_schedule,
)

EPSILON = 0.25


@pytest.fixture(scope="module")
def payload():
    instance = hard_clique_graph(16, 8, seed=3)
    return {
        "n": instance.n,
        "edges": [list(edge) for edge in instance.network.edges()],
        "delta": instance.delta,
        "uids": list(instance.network.uids),
    }


@asynccontextmanager
async def proxied_server(tmp_path, plan, **server_overrides):
    """A real server with a chaos proxy in front, both on UNIX sockets."""
    options = {"jobs": 0, "linger_ms": 1.0}
    options.update(server_overrides)
    config = ServeConfig(unix_path=str(tmp_path / "upstream.sock"), **options)
    server = ColoringServer(config)
    await server.start()
    proxy = ChaosProxy(
        plan,
        Endpoint(unix_path=config.unix_path),
        unix_path=str(tmp_path / "chaos.sock"),
    )
    await proxy.start()
    try:
        yield server, proxy
    finally:
        await proxy.close()
        await server.close()


# ----------------------------------------------------------------------
# Plan validation and seeded schedules
# ----------------------------------------------------------------------


class TestChaosPlan:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ReproError):
            ChaosPlan(reset_probability=1.5)
        with pytest.raises(ReproError):
            ChaosPlan(blackhole_probability=-0.1)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ReproError):
            ChaosPlan(latency_ms=-1)
        with pytest.raises(ReproError):
            ChaosPlan(bandwidth_bytes_per_s=0)
        with pytest.raises(ReproError):
            ChaosPlan(chunk_bytes=0)

    def test_as_dict_round_trips(self):
        plan = ChaosPlan(seed=9, reset_probability=0.1, latency_ms=2.0)
        assert ChaosPlan(**plan.as_dict()) == plan


class TestFaultSchedule:
    PLAN = ChaosPlan(
        seed=11, latency_ms=1.0, latency_jitter_ms=3.0,
        latency_probability=0.5, reset_probability=0.1,
        truncate_probability=0.1,
    )

    def test_same_seed_identical_schedule(self):
        copy = ChaosPlan(**self.PLAN.as_dict())
        for connection in range(3):
            for direction in ("c2s", "s2c"):
                assert (
                    fault_schedule(self.PLAN, connection, direction, 50)
                    == fault_schedule(copy, connection, direction, 50)
                )

    def test_schedule_is_a_prefix_stable_stream(self):
        long = fault_schedule(self.PLAN, 0, "c2s", 50)
        short = fault_schedule(self.PLAN, 0, "c2s", 10)
        assert long[:10] == short

    def test_different_seed_differs(self):
        other = ChaosPlan(**{**self.PLAN.as_dict(), "seed": 12})
        assert (
            fault_schedule(self.PLAN, 0, "c2s", 50)
            != fault_schedule(other, 0, "c2s", 50)
        )

    def test_directions_and_connections_are_independent_streams(self):
        assert (
            fault_schedule(self.PLAN, 0, "c2s", 50)
            != fault_schedule(self.PLAN, 0, "s2c", 50)
        )
        assert (
            fault_schedule(self.PLAN, 0, "c2s", 50)
            != fault_schedule(self.PLAN, 1, "c2s", 50)
        )

    def test_fault_rates_match_plan_roughly(self):
        schedule = fault_schedule(self.PLAN, 0, "c2s", 2000)
        # Reset/truncate terminate a real pump, but the offline stream
        # keeps rolling; rates must track the configured probabilities.
        resets = sum(1 for fault in schedule if fault.action == "reset")
        assert 0.05 < resets / len(schedule) < 0.2

    def test_blackhole_roll_is_deterministic(self):
        plan = ChaosPlan(seed=5, blackhole_probability=0.5)
        copy = ChaosPlan(seed=5, blackhole_probability=0.5)
        rolls = [plan.blackholes(i) for i in range(64)]
        assert rolls == [copy.blackholes(i) for i in range(64)]
        assert any(rolls) and not all(rolls)


# ----------------------------------------------------------------------
# End-to-end through the proxy
# ----------------------------------------------------------------------


async def register_then_bodies(client, payload, count):
    """Register the instance (with retries) and build small hash-keyed
    color bodies — steady-state requests must fit one proxy chunk so
    fault rates stay per-request, not per-kilobyte."""
    registered = await client.request({"op": "register", "instance": dict(payload)})
    assert registered.get("ok"), registered
    return [
        {
            "op": "color", "method": "randomized", "epsilon": EPSILON,
            "seed": 1000 + i, "instance_hash": registered["instance_hash"],
            "include_colors": True,
        }
        for i in range(count)
    ]


class TestChaosProxyEndToEnd:
    def test_clean_plan_forwards_transparently(self, tmp_path, payload):
        async def scenario():
            async with proxied_server(tmp_path, ChaosPlan(seed=0)) as (
                server, proxy,
            ):
                client = ResilientClient(unix_path=proxy.unix_path)
                await client.connect()
                try:
                    response = await client.request({"op": "health"})
                    assert response["ok"]
                finally:
                    await client.close()
                assert proxy.connections == 1
                assert proxy.resets == 0 and proxy.truncations == 0
                assert proxy.bytes_forwarded > 0

        asyncio.run(scenario())

    def test_fault_log_matches_offline_schedule(self, tmp_path, payload):
        plan = ChaosPlan(
            seed=21, latency_ms=0.1, latency_jitter_ms=0.2,
            latency_probability=0.5, chunk_bytes=512,
        )

        async def scenario():
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(unix_path=proxy.unix_path)
                await client.connect()
                try:
                    bodies = await register_then_bodies(client, payload, 5)
                    for body in bodies:
                        response = await client.request(body)
                        assert response["ok"]
                finally:
                    await client.close()
                return list(proxy.fault_log)

        log = asyncio.run(scenario())
        assert log
        for connection in {entry["connection"] for entry in log}:
            for direction in ("c2s", "s2c"):
                observed = [
                    entry for entry in log
                    if entry["connection"] == connection
                    and entry["direction"] == direction
                ]
                predicted = fault_schedule(
                    plan, connection, direction, len(observed)
                )
                for entry, fault in zip(observed, predicted):
                    assert entry["action"] == fault.action
                    assert entry["delay_ms"] == round(fault.delay_ms, 6)

    def test_resets_are_survived_and_responses_identical(
        self, tmp_path, payload
    ):
        """The acceptance bar: every completed response through a lossy
        proxy is byte-identical to the fault-free run — determinism makes
        the retries invisible."""
        plan = ChaosPlan(seed=7, reset_probability=0.05, chunk_bytes=2048)

        async def direct(tmp_path):
            config = ServeConfig(
                unix_path=str(tmp_path / "direct.sock"), jobs=0, linger_ms=1.0
            )
            server = ColoringServer(config)
            await server.start()
            client = ResilientClient(unix_path=config.unix_path)
            await client.connect()
            try:
                bodies = await register_then_bodies(client, payload, 12)
                return [await client.request(body) for body in bodies]
            finally:
                await client.close()
                await server.close()

        async def chaotic(tmp_path):
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(
                    unix_path=proxy.unix_path,
                    retry=RetryPolicy(attempts=8, base_delay_s=0.01, seed=3),
                )
                await client.connect()
                try:
                    bodies = await register_then_bodies(client, payload, 12)
                    outcomes = [await client.call(body) for body in bodies]
                finally:
                    await client.close()
                return outcomes, proxy.resets

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        baseline = asyncio.run(direct(tmp_path / "a"))
        outcomes, resets = asyncio.run(chaotic(tmp_path / "b"))
        assert resets > 0, "plan injected no resets; raise the rate"
        assert any(outcome.retried for outcome in outcomes)
        assert all(outcome.ok for outcome in outcomes)
        for reference, outcome in zip(baseline, outcomes):
            assert outcome.body["result"] == reference["result"]

    def test_truncation_mid_response_is_retried(self, tmp_path, payload):
        plan = ChaosPlan(seed=13, truncate_probability=0.05, chunk_bytes=2048)

        async def scenario():
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(
                    unix_path=proxy.unix_path,
                    retry=RetryPolicy(attempts=8, base_delay_s=0.01),
                )
                await client.connect()
                try:
                    bodies = await register_then_bodies(client, payload, 10)
                    outcomes = [await client.call(body) for body in bodies]
                finally:
                    await client.close()
                return outcomes, proxy.truncations

        outcomes, truncations = asyncio.run(scenario())
        assert truncations > 0, "plan injected no truncations; raise the rate"
        assert all(outcome.ok for outcome in outcomes)

    def test_blackholed_connection_times_out_clean(self, tmp_path, payload):
        plan = ChaosPlan(seed=0, blackhole_probability=1.0)

        async def scenario():
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(
                    unix_path=proxy.unix_path,
                    retry=RetryPolicy(attempts=2, base_delay_s=0.0),
                    request_timeout_s=0.1,
                )
                outcome = await client.call({"op": "health"})
                await client.close()
                assert not outcome.ok
                assert outcome.body["error"]["code"] == "unavailable"
                assert proxy.blackholed >= 1
                # The upstream server never saw the connection.
                assert server.connections == 0

        asyncio.run(scenario())

    def test_added_latency_slows_but_completes(self, tmp_path, payload):
        plan = ChaosPlan(seed=2, latency_ms=30.0)

        async def scenario():
            loop = asyncio.get_running_loop()
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(unix_path=proxy.unix_path)
                await client.connect()
                try:
                    started = loop.time()
                    response = await client.request({"op": "health"})
                    elapsed_ms = (loop.time() - started) * 1000.0
                finally:
                    await client.close()
                assert response["ok"]
                # One chunk each way pays >= 30ms.
                assert elapsed_ms >= 50.0

        asyncio.run(scenario())

    def test_summary_counts(self, tmp_path, payload):
        plan = ChaosPlan(seed=0)

        async def scenario():
            async with proxied_server(tmp_path, plan) as (server, proxy):
                client = ResilientClient(unix_path=proxy.unix_path)
                await client.connect()
                await client.request({"op": "health"})
                await client.close()
                summary = proxy.summary()
                assert summary["connections"] == 1
                assert summary["plan"] == plan.as_dict()

        asyncio.run(scenario())
