"""Tests for the parallel campaign runner (:mod:`repro.runner`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.runner import (
    CampaignCell,
    cells_from_spec,
    derive_cell_seed,
    e2b_sample,
    e2b_summary_row,
    preset_cells,
    run_campaign,
    run_cell,
)

#: Small enough to run in a test, large enough to exercise the pipeline.
SMALL = dict(workload="hard", num_cliques=16, delta=8, epsilon=0.25)


def small_cells(seeds=(0, 1)) -> list[CampaignCell]:
    return [
        CampaignCell(label=f"seed={seed}", seed=seed, **SMALL)
        for seed in seeds
    ]


class TestRunCell:
    def test_row_shape(self):
        row = run_cell(small_cells()[0])
        assert row["label"] == "seed=0"
        assert row["seed"] == 0
        assert row["rounds"] > 0 and row["messages"] > 0
        assert row["delta"] == 8
        assert isinstance(row["breakdown"], dict)
        assert "shattering" in row  # randomized runs carry shattering stats

    def test_deterministic_method(self):
        cell = CampaignCell(label="det", method="deterministic", **SMALL)
        row = run_cell(cell)
        assert row["rounds"] > 0
        assert "shattering" not in row

    def test_unknown_workload_rejected(self):
        with pytest.raises(ReproError, match="workload"):
            run_cell(CampaignCell(label="bad", workload="nope"))

    def test_unknown_method_rejected(self):
        with pytest.raises(ReproError, match="method"):
            run_cell(CampaignCell(label="bad", method="nope", **SMALL))

    def test_cell_is_deterministic(self):
        cell = small_cells()[0]
        first, second = run_cell(cell), run_cell(cell)
        # Rows carry no volatile fields at all (the checkpoint/resume
        # byte-identity guarantee relies on this).
        assert first == second

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="engine"):
            run_cell(CampaignCell(label="bad", engine="turbo", **SMALL))

    @pytest.mark.parametrize("method", ["randomized", "deterministic"])
    def test_columnar_engine_rows_are_byte_identical(self, method):
        """Engine selection may only change execution speed: the same
        cell run on the columnar backend must serialize to exactly the
        bytes the fast engine produces (the artifact contract)."""
        from dataclasses import replace

        cell = CampaignCell(label="parity", seed=0, **{**SMALL, "method": method})
        fast_row = run_cell(replace(cell, engine="fast"))
        columnar_row = run_cell(replace(cell, engine="columnar"))
        default_row = run_cell(cell)
        assert (
            json.dumps(columnar_row, sort_keys=True)
            == json.dumps(fast_row, sort_keys=True)
            == json.dumps(default_row, sort_keys=True)
        )


class TestRunCampaign:
    def test_rows_in_cell_order(self):
        result = run_campaign(small_cells((3, 1, 2)))
        assert [row["seed"] for row in result.rows] == [3, 1, 2]

    def test_process_pool_matches_inline(self):
        cells = small_cells((0, 1, 2, 3))
        inline = run_campaign(cells, jobs=1)
        pooled = run_campaign(cells, jobs=2)
        # Scheduling must not leak into results.
        assert inline.rows == pooled.rows
        assert pooled.jobs == 2

    def test_derived_seeds_are_stable(self):
        cells = [CampaignCell(label="a", **SMALL), CampaignCell(label="b", **SMALL)]
        first = run_campaign(cells, base_seed=5)
        second = run_campaign(cells, base_seed=5)
        assert [c.seed for c in first.cells] == [c.seed for c in second.cells]
        assert first.cells[0].seed != first.cells[1].seed
        assert first.cells[0].seed == derive_cell_seed(5, 0, "a")

    def test_progress_callback(self):
        seen = []
        run_campaign(
            small_cells((0,)),
            progress=lambda done, total, label: seen.append((done, total, label)),
        )
        assert seen == [(1, 1, "seed=0")]

    def test_strict_failure_raises(self):
        bad = CampaignCell(label="bad", workload="nope")
        with pytest.raises(ReproError):
            run_campaign([bad])

    def test_non_strict_records_failure(self):
        cells = [CampaignCell(label="bad", workload="nope"), *small_cells((0,))]
        result = run_campaign(cells, strict=False)
        assert result.failures and result.failures[0]["label"] == "bad"
        assert result.rows[0]["error"]
        assert result.rows[0]["status"] == "error"
        assert result.rows[1]["seed"] == 0

    def test_summary(self):
        result = run_campaign(small_cells((0, 1)))
        summary = result.summary("rounds")
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_write(self, tmp_path):
        result = run_campaign(small_cells((0,)))
        path = result.write(tmp_path / "out" / "rows.json")
        assert json.loads(path.read_text())[0]["seed"] == 0


class TestSpec:
    def test_explicit_cells(self):
        cells = cells_from_spec(
            {"cells": [{"label": "x", "num_cliques": 16, "delta": 8}]}
        )
        assert cells[0].label == "x"
        assert cells[0].num_cliques == 16

    def test_grid_product(self):
        cells = cells_from_spec(
            {"grid": {"num_cliques": [16, 32], "seed": [0, 1], "delta": 8}}
        )
        assert len(cells) == 4
        assert cells[0].label == "num_cliques=16 delta=8 seed=0"
        assert [ (c.num_cliques, c.seed) for c in cells ] == [
            (16, 0), (16, 1), (32, 0), (32, 1)
        ]

    def test_grid_options(self):
        cells = cells_from_spec(
            {"grid": {"seed": [0], "options": {"activation_probability": 0.5}}}
        )
        assert cells[0].option_dict() == {"activation_probability": 0.5}

    def test_grid_engine_field(self):
        cells = cells_from_spec(
            {"grid": {"num_cliques": [16], "engine": ["fast", "columnar"]}}
        )
        assert [cell.engine for cell in cells] == ["fast", "columnar"]
        # "engine" sits last in the grid order so pre-existing specs keep
        # their labels (and therefore their derived seeds) unchanged.
        assert cells[0].label == "num_cliques=16 engine=fast"

    def test_unknown_grid_field_rejected(self):
        with pytest.raises(ReproError, match="grid fields"):
            cells_from_spec({"grid": {"bogus": [1]}})

    def test_empty_spec_rejected(self):
        with pytest.raises(ReproError, match="no cells"):
            cells_from_spec({})


class TestPresets:
    def test_known_presets(self):
        assert len(preset_cells("e2b")) == 24
        assert all(c.method == "randomized" for c in preset_cells("e2"))

    def test_unknown_preset(self):
        with pytest.raises(ReproError, match="preset"):
            preset_cells("nope")

    def test_e2b_row_shaping(self):
        samples = [
            {"seed": s, "rounds": 40 + s,
             "shattering": {"good": 5, "bad_cliques": 0, "max_component": 0}}
            for s in (0, 1)
        ]
        shaped = [e2b_sample(row) for row in samples]
        assert shaped[0] == {
            "seed": 0, "rounds": 40, "t_nodes": 5,
            "bad_cliques": 0, "max_component": 0,
        }
        summary = e2b_summary_row(shaped)
        assert summary["seed"] == "SUMMARY"
        assert summary["rounds"].startswith("40..41")


class TestCli:
    def test_campaign_spec_cli(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(
            {"name": "tiny",
             "grid": {"num_cliques": 16, "delta": 8, "epsilon": 0.25,
                      "seed": [0, 1]}}
        ))
        out = tmp_path / "rows.json"
        assert main([
            "campaign", "--spec", str(spec), "-o", str(out), "--quiet",
        ]) == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 2
        assert {row["seed"] for row in rows} == {0, 1}
        assert "campaign tiny" in capsys.readouterr().out

    def test_campaign_preset_listed_in_help(self):
        from repro.cli import build_parser

        # Smoke: the parser accepts the presets wired from the runner.
        args = build_parser().parse_args(["campaign", "--preset", "e2b"])
        assert args.preset == "e2b"
