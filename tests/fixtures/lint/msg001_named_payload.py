"""Fixture: wide payload laundered through a local name (MSG001)."""

from repro.local.algorithm import DistributedAlgorithm


class LaunderedDump(DistributedAlgorithm):
    name = "laundered-dump"

    def on_round(self, node, api, inbox):
        payload = [message for _, message in inbox]
        api.broadcast(payload)
