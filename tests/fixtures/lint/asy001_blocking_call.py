"""Fixture: blocking calls on the event-loop thread (ASY001)."""

import subprocess
import time


async def handle_request(payload):
    time.sleep(0.5)  # parks every connection
    return payload


async def read_config(path):
    return path.read_text()  # sync file IO in a coroutine


async def run_job(pool, job):
    return pool.submit(job).result()  # loop waits for the worker


def _warm_cache(path):
    # Sync helper one frame below the coroutine: same bug, one hop away.
    subprocess.run(["touch", str(path)])


async def prepare(path):
    _warm_cache(path)
