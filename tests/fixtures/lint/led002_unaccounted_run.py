"""Fixture: RunResult used, but its rounds never escape (LED002)."""


def outputs_only(network, algorithm):
    result = network.run(algorithm)
    colors = result.outputs
    return colors
