"""Fixture: RNG seeds that do not derive from the seed scheme (PRV001)."""

import random


def make_backoff_rng():
    return random.Random(42)  # literal seed: replays cannot control it


def make_ambient_rng():
    return random.Random()  # ambient entropy: unreproducible outright


def make_opaque_rng():
    return random.Random(compute_salt())  # arbitrary call: provenance lost


def compute_salt():
    return 7
