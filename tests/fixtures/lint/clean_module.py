"""Fixture: idiomatic code that every rule family accepts."""

import random

from repro.local.algorithm import DistributedAlgorithm


class ProperAlgorithm(DistributedAlgorithm):
    name = "proper"

    def __init__(self, palette, seed):
        self.palette = tuple(palette)  # read-only config
        self.rng = random.Random(seed)  # explicitly seeded

    def on_start(self, node, api):
        api.broadcast(node.uid)

    def on_round(self, node, api, inbox):
        smallest = min(message for _, message in inbox)
        api.halt(smallest)


def run_and_charge(network, algorithm, ledger):
    result = network.run(algorithm)
    ledger.charge_result("fixture/run", result)
    return result.rounds


def run_and_return(network, algorithm):
    # Returning the RunResult passes accounting duty to the caller.
    return network.run(algorithm)


def deterministic_order(vertices):
    pending: set[int] = set(vertices)
    ordered = [v for v in sorted(pending)]
    span = sum(v for v in pending)  # order-free consumer: fine unsorted
    indices = set(range(10))
    doubled = [2 * v for v in indices]  # provably int elements
    return ordered, span, doubled
