"""Fixture: RNG construction the PRV provenance rules accept."""

import random

from repro.runner.campaign import derive_cell_seed


def cell_rng(base_seed, index, label):
    return random.Random(derive_cell_seed(base_seed, index, label))


def threaded_rng(seed):
    return random.Random(seed)  # caller threaded the seed down


def offset_rng(seed, lane):
    mixed = seed * 31 + lane
    return random.Random(mixed)  # arithmetic over a derived value


def plan_rng(plan):
    return random.Random(plan.seed)  # attribute of a seeded plan


def default_rng(seed=None):
    return random.Random(seed if seed is not None else 0)  # default idiom
