"""Fixture: order-sensitive iteration over a non-int set (DET002)."""


def first_tag(tags):
    labels = {str(tag) for tag in tags}
    ordered = []
    for label in labels:
        ordered.append(label)
    return ordered[0]
