"""Fixture: coroutine called but never awaited (ASY002)."""


class Session:
    async def flush(self):
        pass

    async def close(self):
        self.flush()  # builds a coroutine object and drops it


async def refresh(state):
    pass


async def tick(state):
    refresh(state)  # never awaited: the body never runs
