"""Fixture: vectorized-kernel idioms every rule family must accept.

Mirrors the shapes :mod:`repro.local.columnar` is built from — numpy
struct-of-arrays buffers, stable argsort bucketing, membership probes
against neighbor sets, and sorted iteration wherever order matters.
None of it may trip DET002 (or any other rule): the arrays are ordered
sequences, and the only set usage is order-free or sorted.
"""

import numpy as np


def bucket_delivery(dst, payload_refs):
    """Stable-sort bucketing: arrays in, arrays out, fully ordered."""
    order = np.argsort(dst, kind="stable")
    sorted_dst = dst[order]
    bounds = np.flatnonzero(np.diff(sorted_dst)) + 1
    refs = payload_refs[order]
    buckets = []
    for start, stop in zip(
        [0, *bounds.tolist()], [*bounds.tolist(), sorted_dst.size]
    ):
        buckets.append(refs[start:stop].tolist())
    return buckets


def validate_unicasts(srcs, dsts, neighbor_sets):
    """Membership probes against sets never iterate them — clean."""
    bad = [
        (src, dst)
        for src, dst in zip(srcs, dsts)
        if dst not in neighbor_sets[src]
    ]
    return bad


def degree_histogram(adjacency):
    degrees = np.fromiter(
        (len(neighbors) for neighbors in adjacency), dtype=np.intp
    )
    counts = np.bincount(degrees)
    total = int(degrees.sum())  # order-free reduction over the array
    return counts.tolist(), total


def receivers_in_order(touched: set[int]):
    # Sets of vertices are fine as long as iteration is sorted.
    return [vertex for vertex in sorted(touched)]
