"""Fixture: wall-clock read on a deterministic path (DET003)."""

import time


def stamp_result(result):
    return {"rounds": result, "at": time.time()}
