"""Fixture: violations silenced by inline pragmas."""

import time

from repro.local.algorithm import DistributedAlgorithm


def stamped():
    return time.time()  # repro: lint-exempt[DET003] -- fixture: doc example

def tagged(tags):
    labels = {str(t) for t in tags}
    # repro: lint-exempt[DET002] -- consumed order-free two lines down
    collected = [label for label in labels]
    return set(collected)


class ExemptDump(DistributedAlgorithm):
    name = "exempt-dump"

    def on_round(self, node, api, inbox):
        # repro: congest-exempt -- O(Delta) words by design (LOCAL phase)
        api.broadcast([m for _, m in inbox])
