"""Fixture: per-node callback reads global graph state (LOC001)."""

from repro.local.algorithm import DistributedAlgorithm


class GlobalPeek(DistributedAlgorithm):
    name = "global-peek"

    def __init__(self, degrees):
        self.degrees = degrees  # read-only config: allowed

    def on_round(self, node, api, inbox):
        # Reading another vertex's row of the adjacency is an unbounded
        # view — the violation under test.
        other = self.degrees.adjacency[node.index + 1]
        api.output(len(other))
