"""Fixture: spawned task handle dropped on the floor (ASY003)."""

import asyncio


async def _drain():
    pass


def on_signal():
    asyncio.get_running_loop().create_task(_drain())  # weakly referenced


async def kick_off():
    asyncio.ensure_future(_drain())  # same hole, older spelling
