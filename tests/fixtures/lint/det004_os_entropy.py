"""Fixture: OS entropy on a deterministic path (DET004)."""

import os


def fresh_seed():
    return int.from_bytes(os.urandom(8), "big")
