"""Fixture: algorithm stores the live Network as config (LOC003)."""

from repro.local.algorithm import DistributedAlgorithm


class NetworkHoarder(DistributedAlgorithm):
    name = "network-hoarder"

    def __init__(self, network):
        self.net = network  # whole-graph oracle captured

    def on_round(self, node, api, inbox):
        api.halt(node.uid)
