"""Fixture: engine run result discarded (LED001)."""


def warm_up(network, algorithm):
    network.run(algorithm)
    return True
