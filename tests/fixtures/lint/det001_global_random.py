"""Fixture: process-global random module usage (DET001)."""

import random


def pick_color(palette):
    return random.choice(palette)
