"""Fixture: builtin hash() of a string value (DET005)."""


def bucket_of(label, buckets):
    return hash(label) % buckets
