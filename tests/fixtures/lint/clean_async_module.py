"""Fixture: idiomatic asyncio code every ASY rule accepts."""

import asyncio


class Worker:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._drain_task = None
        self._tasks = set()

    async def pause(self):
        await asyncio.sleep(0.1)  # the sanctioned sleep

    async def run_blocking(self, pool, job):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(pool, job)  # sanctioned escape

    async def guarded_update(self, state):
        async with self._lock:  # async lock across the suspension point
            await asyncio.sleep(0)
            state.bump()

    async def submit_and_await(self, pool, job):
        task = asyncio.wrap_future(pool.submit(job))
        return await task  # .result() never called synchronously

    def on_signal(self):
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )  # handle retained on self

    def spawn_tracked(self, coro):
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def drain(self):
        await self.pause()  # awaited coroutine call

    async def shutdown(self):
        await asyncio.gather(self.drain(), self.pause())  # scheduled, not dropped
