"""Fixture: per-node callback touches Api internals (LOC002)."""

from repro.local.algorithm import DistributedAlgorithm


class OutboxForger(DistributedAlgorithm):
    name = "outbox-forger"

    def on_round(self, node, api, inbox):
        # Forging an outbox row bypasses send validation.
        api._outbox.append((0, node.index, "forged"))
