"""Fixture: columnar engine run result discarded (LED001).

The columnar entry points produce RunResults exactly like
``Network.run`` — discarding one loses the simulated rounds before any
ledger can account for them.
"""


def warm_up(network, algorithm):
    from repro.local.columnar import run_columnar

    run_columnar(network, algorithm)
    return True
