"""Fixture: send payload built as a whole container (MSG001)."""

from repro.local.algorithm import DistributedAlgorithm


class NeighborhoodDump(DistributedAlgorithm):
    name = "neighborhood-dump"

    def on_round(self, node, api, inbox):
        api.broadcast([message for _, message in inbox])
