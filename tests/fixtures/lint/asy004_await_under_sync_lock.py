"""Fixture: await while holding a synchronous lock (ASY004)."""

import asyncio
import threading

_lock = threading.Lock()


async def update(state):
    with _lock:  # sync lock held across a suspension point
        await asyncio.sleep(0.1)
        state.bump()
