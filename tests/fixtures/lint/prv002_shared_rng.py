"""Fixture: RNG streams shared across consumer boundaries (PRV002)."""

import random

import settings

_SHARED = random.Random(settings.seed)  # one stream for the whole process


def roll(faces, rng=random.Random(settings.seed)):  # evaluated once
    return rng.randrange(faces)
