"""Tests for radius-k neighborhood gathering."""

from __future__ import annotations

from repro.local import Network, ball, ball_vertices, gather_balls


def path_network(n: int) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestBall:
    def test_radius_zero(self):
        net = path_network(5)
        b = ball(net, 2, 0)
        assert b.vertices == (2,)
        assert b.distance == {2: 0}

    def test_radius_two_on_path(self):
        net = path_network(6)
        b = ball(net, 2, 2)
        assert set(b.vertices) == {0, 1, 2, 3, 4}
        assert b.distance[0] == 2
        assert b.boundary() == [0, 4]

    def test_radius_exceeding_diameter(self):
        net = path_network(4)
        b = ball(net, 0, 10)
        assert set(b.vertices) == {0, 1, 2, 3}

    def test_gather_balls_covers_every_vertex(self):
        net = path_network(5)
        balls = gather_balls(net, 1)
        assert len(balls) == 5
        assert set(balls[1].vertices) == {0, 1, 2}

    def test_ball_vertices_shortcut(self):
        net = path_network(5)
        assert ball_vertices(net, 4, 1) == {3, 4}

    def test_disconnected_ball_stays_in_component(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)])
        assert ball_vertices(net, 0, 5) == {0, 1}
