"""Chaos suite: deterministic fault injection in the LOCAL engine.

Covers the :class:`~repro.local.faults.FaultPlan` contract (validation,
noop detection), the three fault channels (message loss, crash-stop,
round budget), the determinism guarantee (same plan → bit-identical
result *including* fault accounting), parity of noop plans with the
fault-free hot path, and the graceful-degradation checker.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.local import (
    DistributedAlgorithm,
    FaultPlan,
    Network,
    Tracer,
    force_legacy_engine,
)
from repro.verify import check_graceful_degradation


def path_network(n: int = 6) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def random_network(n: int, m: int, seed: int) -> Network:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Network.from_edges(n, sorted(edges))


class Flood(DistributedAlgorithm):
    """Node 0 floods a token; each node outputs the round it was reached."""

    name = "flood"

    def on_start(self, node, api):
        if node.index == 0:
            api.broadcast("go")
            api.halt(0)

    def on_round(self, node, api, inbox):
        api.broadcast("go")
        api.halt(api.round)


class Gossip(DistributedAlgorithm):
    """Spread uids for ``horizon`` rounds; outputs are drop-sensitive."""

    name = "gossip"

    def __init__(self, horizon: int = 4):
        self.horizon = horizon

    def on_start(self, node, api):
        node.state["seen"] = {node.uid}
        api.broadcast(node.uid)

    def on_round(self, node, api, inbox):
        seen = node.state["seen"]
        fresh = {uid for _, uid in inbox} - seen
        seen.update(fresh)
        if api.round >= self.horizon:
            api.halt(sorted(seen))
        elif fresh:
            api.broadcast(max(fresh))


class CrashedAlarm(DistributedAlgorithm):
    """Node 0 sets a late alarm; a crash before it fires must discard it."""

    name = "crashed-alarm"

    def on_start(self, node, api):
        if node.index == 0:
            api.set_alarm(5)
        elif node.index == 1:
            api.broadcast("x")

    def on_round(self, node, api, inbox):
        if node.index == 0:
            api.broadcast("boom")
        else:
            api.halt(api.round)


class TestFaultPlan:
    def test_default_is_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan(seed=99).is_noop  # seed alone injects nothing

    @pytest.mark.parametrize("plan_kwargs", [
        {"drop_probability": 0.1},
        {"crashes": ((0, 3),)},
        {"round_budget": 10},
    ])
    def test_any_fault_channel_is_not_noop(self, plan_kwargs):
        assert not FaultPlan(**plan_kwargs).is_noop

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_drop_probability_range(self, bad):
        with pytest.raises(SimulationError, match="drop_probability"):
            FaultPlan(drop_probability=bad)

    @pytest.mark.parametrize("crash", [(-1, 0), (0, -2)])
    def test_negative_crash_entries(self, crash):
        with pytest.raises(SimulationError, match="crash"):
            FaultPlan(crashes=(crash,))

    def test_negative_budget(self):
        with pytest.raises(SimulationError, match="round_budget"):
            FaultPlan(round_budget=-1)

    def test_crash_schedule_validated_against_network(self):
        with pytest.raises(SimulationError, match="node 99"):
            path_network(4).run(Flood(), faults=FaultPlan(crashes=((99, 1),)))

    def test_duplicate_crash_entries_take_earliest(self):
        plan = FaultPlan(crashes=((2, 5), (2, 1)))
        assert plan.crash_rounds(4)[2] == 1


class TestDeterminism:
    PLAN = FaultPlan(seed=7, drop_probability=0.3, crashes=((3, 2),))

    def test_same_plan_is_bit_identical(self):
        network = random_network(40, 100, seed=5)
        first = network.run(Gossip(), faults=self.PLAN)
        second = network.run(Gossip(), faults=self.PLAN)
        assert first.outputs == second.outputs
        assert first.rounds == second.rounds
        assert first.messages == second.messages
        assert first.dropped_messages == second.dropped_messages
        assert first.crashed_nodes == second.crashed_nodes
        assert first.fault_summary() == second.fault_summary()

    def test_different_seed_rerolls_drops(self):
        network = random_network(40, 100, seed=5)
        base = network.run(Gossip(), faults=self.PLAN)
        other = network.run(
            Gossip(),
            faults=FaultPlan(seed=8, drop_probability=0.3, crashes=((3, 2),)),
        )
        # The drop pattern feeds the outputs; a reroll must diverge.
        assert (base.dropped_messages, base.outputs) != (
            other.dropped_messages, other.outputs
        )

    def test_noop_plan_matches_fault_free_run(self):
        network = random_network(30, 70, seed=2)
        plain = network.run(Gossip())
        noop = network.run(Gossip(), faults=FaultPlan(seed=123))
        assert noop.outputs == plain.outputs
        assert noop.rounds == plain.rounds
        assert noop.messages == plain.messages
        assert noop.dropped_messages == 0
        assert noop.crashed_nodes == []
        assert not noop.budget_exhausted

    def test_injected_loop_matches_hot_path_when_plan_is_harmless(self):
        """p=0 and no crashes, but a generous budget forces the injected
        loop — it must reproduce the hot path bit for bit."""
        network = random_network(30, 70, seed=2)
        plain = network.run(Gossip(), measure_bandwidth=True)
        injected = network.run(
            Gossip(), measure_bandwidth=True,
            faults=FaultPlan(round_budget=10_000),
        )
        assert injected.outputs == plain.outputs
        assert injected.rounds == plain.rounds
        assert injected.messages == plain.messages
        assert injected.max_message_words == plain.max_message_words
        assert injected.total_message_words == plain.total_message_words
        assert not injected.budget_exhausted


class TestMessageLoss:
    def test_drop_everything(self):
        network = path_network(6)
        result = network.run(Gossip(), faults=FaultPlan(drop_probability=1.0))
        # Every round-0 broadcast is lost: nobody is ever scheduled.
        assert result.rounds == 0
        assert result.dropped_messages == result.messages > 0
        assert result.delivered_messages == 0
        assert result.outputs == [None] * 6

    def test_accounting_sums(self):
        network = random_network(40, 100, seed=5)
        result = network.run(
            Gossip(), faults=FaultPlan(seed=3, drop_probability=0.4)
        )
        assert 0 < result.dropped_messages < result.messages
        assert (
            result.delivered_messages
            == result.messages - result.dropped_messages
        )

    def test_bandwidth_charged_at_send_time(self):
        """A dropped message still occupied the link: with p=1 every word
        sent in round 0 is counted even though nothing is delivered."""
        network = path_network(4)
        result = network.run(
            Gossip(), measure_bandwidth=True,
            faults=FaultPlan(drop_probability=1.0),
        )
        assert result.dropped_messages == result.messages
        assert result.total_message_words == result.messages  # 1-word uids

    def test_bandwidth_limit_enforced_under_faults(self):
        class Fat(DistributedAlgorithm):
            name = "fat"

            def on_start(self, node, api):
                api.broadcast(tuple(range(64)))

            def on_round(self, node, api, inbox):
                api.halt(None)

        with pytest.raises(SimulationError, match="CONGEST"):
            path_network(3).run(
                Fat(), bandwidth_limit=4,
                faults=FaultPlan(drop_probability=1.0),
            )


class TestCrashStop:
    def test_crash_blocks_the_flood(self):
        network = path_network(6)
        result = network.run(Flood(), faults=FaultPlan(crashes=((2, 1),)))
        assert result.outputs == [0, 1, None, None, None, None]
        assert result.crashed_nodes == [2]
        # Node 1's broadcast to the dead node 2 is the only loss
        # (its copy to the halted node 0 is the usual silent drop).
        assert result.dropped_messages == 1

    def test_dead_on_arrival_never_starts(self):
        network = path_network(4)
        result = network.run(Flood(), faults=FaultPlan(crashes=((0, 0),)))
        assert result.rounds == 0
        assert result.messages == 0
        assert result.outputs == [None] * 4
        assert result.crashed_nodes == [0]

    def test_last_live_round_messages_still_delivered(self):
        """Crash-stop is not Byzantine recall: node 1 crashes at round 2,
        so what it sent in round 1 arrives and the flood continues."""
        network = path_network(4)
        result = network.run(Flood(), faults=FaultPlan(crashes=((1, 2),)))
        assert result.outputs == [0, 1, 2, 3]
        assert result.crashed_nodes == [1]

    def test_crashed_alarm_is_discarded(self):
        network = path_network(4)
        baseline = network.run(CrashedAlarm())
        assert baseline.rounds == 5  # the alarm fires and node 0 broadcasts
        result = network.run(CrashedAlarm(), faults=FaultPlan(crashes=((0, 3),)))
        assert result.rounds == 2  # nothing happens once the alarm is due
        assert result.outputs[0] is None

    def test_fault_summary_shape(self):
        network = path_network(6)
        result = network.run(Flood(), faults=FaultPlan(crashes=((2, 1),)))
        assert result.fault_summary() == {
            "dropped_messages": 1,
            "crashed_nodes": [2],
            "budget_exhausted": False,
            "rounds_survived": result.rounds,
        }


class TestRoundBudget:
    def test_budget_cuts_the_run(self):
        network = path_network(10)
        result = network.run(Flood(), faults=FaultPlan(round_budget=3))
        assert result.rounds == 3
        assert result.budget_exhausted
        assert result.outputs[:4] == [0, 1, 2, 3]
        assert result.outputs[4:] == [None] * 6

    def test_budget_zero_stops_before_round_one(self):
        network = path_network(4)
        result = network.run(Flood(), faults=FaultPlan(round_budget=0))
        assert result.rounds == 0
        assert result.budget_exhausted
        assert result.outputs == [0, None, None, None]

    def test_generous_budget_is_not_exhausted(self):
        network = path_network(4)
        result = network.run(Flood(), faults=FaultPlan(round_budget=100))
        assert not result.budget_exhausted
        assert result.outputs == [0, 1, 2, 3]


class TestEngineIntegration:
    def test_legacy_engine_rejects_faults(self):
        network = path_network(4)
        with force_legacy_engine():
            with pytest.raises(SimulationError, match="legacy"):
                network.run(Flood(), faults=FaultPlan(drop_probability=0.5))

    def test_legacy_engine_accepts_noop_plan(self):
        network = path_network(4)
        with force_legacy_engine():
            result = network.run(Flood(), faults=FaultPlan())
        assert result.outputs == [0, 1, 2, 3]

    def test_tracer_records_under_faults(self):
        network = path_network(6)
        tracer = Tracer()
        network.run(
            Flood(), tracer=tracer, faults=FaultPlan(crashes=((3, 2),))
        )
        assert tracer.samples  # per-round samples were recorded


class TestTracerParity:
    """The fault loop's tracer must account like the fault-free loop:
    crashed nodes are never counted as scheduled, and dropped messages
    never count as delivered."""

    def test_harmless_plan_samples_match_hot_path(self):
        # A crash scheduled far beyond the run forces the fault loop
        # without injecting anything; its samples must be bit-identical
        # to the fault-free loop's.
        network = path_network(6)
        plain = Tracer()
        network.run(Flood(), tracer=plain)
        forced = Tracer()
        network.run(
            Flood(), tracer=forced,
            faults=FaultPlan(crashes=((0, 10 ** 6),)),
        )
        assert forced.samples == plain.samples

    def test_crashed_node_never_scheduled(self):
        # Flood on a path reaches node i in round i; node 3 crashes at
        # round 2, so only nodes 1 and 2 ever execute a round.
        network = path_network(6)
        tracer = Tracer()
        network.run(
            Flood(), tracer=tracer, faults=FaultPlan(crashes=((3, 2),))
        )
        assert sum(s.scheduled for s in tracer.samples) == 2

    def test_crashed_node_inbox_not_counted_as_delivered(self):
        # Node 2 crashes exactly when the flood token would reach it:
        # the token is dropped at delivery time (node 0's copy is a
        # silent halted-node drop), so the only delivery the samples may
        # count is node 1's token in round 1.
        network = path_network(4)
        tracer = Tracer()
        result = network.run(
            Flood(), tracer=tracer, faults=FaultPlan(crashes=((2, 2),))
        )
        assert result.messages == 3
        assert result.dropped_messages == 1
        assert sum(s.delivered for s in tracer.samples) == 1
        assert sum(s.scheduled for s in tracer.samples) == 1

    def test_dropped_messages_excluded_from_delivered(self):
        # Gossip nodes halt only at the horizon and never send to halted
        # nodes, so delivered must equal sent minus dropped exactly.
        network = random_network(12, 30, seed=3)
        tracer = Tracer()
        result = network.run(
            Gossip(horizon=4), tracer=tracer,
            faults=FaultPlan(seed=1, drop_probability=0.4),
        )
        assert result.dropped_messages > 0
        delivered = sum(s.delivered for s in tracer.samples)
        assert delivered == result.messages - result.dropped_messages


class TestGracefulDegradation:
    def triangle(self) -> Network:
        return Network.from_edges(3, [(0, 1), (1, 2), (0, 2)])

    def test_intact(self):
        report = check_graceful_degradation(self.triangle(), [0, 1, 2], 3)
        assert report.status == "intact"
        assert report.surviving_valid
        assert report.colored_live == 3

    def test_uncolored_live_node_degrades(self):
        report = check_graceful_degradation(self.triangle(), [0, 1, None], 3)
        assert report.status == "degraded"
        assert report.surviving_valid
        assert report.uncolored_live == (2,)

    def test_crashed_endpoint_edges_ignored(self):
        # 0 and 2 agree on color 0, but 2 crashed: no live-live conflict.
        report = check_graceful_degradation(
            self.triangle(), [0, 1, 0], 3, crashed=[2]
        )
        assert report.status == "degraded"
        assert report.surviving_valid
        assert report.live == (0, 1)
        assert report.crashed == (2,)

    def test_monochromatic_live_edge_violates(self):
        report = check_graceful_degradation(self.triangle(), [0, 0, 1], 3)
        assert report.status == "violated"
        assert not report.surviving_valid
        assert any("monochromatic" in v for v in report.violations)

    def test_out_of_range_color_violates(self):
        report = check_graceful_degradation(self.triangle(), [0, 1, 5], 3)
        assert report.status == "violated"
        assert any("outside" in v for v in report.violations)

    @pytest.mark.parametrize("garbage", ["red", 1.5, True])
    def test_non_integer_output_violates(self, garbage):
        report = check_graceful_degradation(
            self.triangle(), [0, 1, garbage], 3
        )
        assert report.status == "violated"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            check_graceful_degradation(self.triangle(), [0, 1], 3)

    def test_summary_is_flat(self):
        report = check_graceful_degradation(
            self.triangle(), [0, 1, None], 3, crashed=[2]
        )
        assert report.summary() == {
            "status": "degraded",
            "live": 2,
            "crashed": 1,
            "colored_live": 2,
            "uncolored_live": 0,
            "violations": 0,
        }

    def test_end_to_end_crash_run_degrades_not_violates(self):
        network = path_network(6)
        result = network.run(Flood(), faults=FaultPlan(crashes=((2, 1),)))
        report = check_graceful_degradation(
            network, result.outputs, num_colors=10,
            crashed=result.crashed_nodes,
        )
        assert report.status == "degraded"
        assert report.surviving_valid
