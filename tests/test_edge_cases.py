"""Edge-case battery across modules: small, degenerate, and boundary
inputs that the main suites do not reach."""

from __future__ import annotations

import pytest

from repro import AlgorithmParameters, Network
from repro.core import (
    Loophole,
    build_pair_conflict_graph,
    color_slack_pairs,
    form_slack_triads,
)
from repro.core.sparsify_phase import incoming_bound
from repro.core.triads import SlackTriad
from repro.errors import InvariantViolation, SubroutineError
from repro.local import RoundLedger, VirtualNetwork


class TestPairColoringEdges:
    def test_empty_triads(self):
        net = Network.from_edges(2, [(0, 1)])
        assignment, stats = color_slack_pairs(net, [], [0, 1])
        assert assignment == {}
        assert stats["gv_nodes"] == 0

    def test_single_pair_gets_first_color(self):
        # Path 1-0-2: vertex 0's neighbors 1, 2 are non-adjacent.
        net = Network.from_edges(3, [(0, 1), (0, 2)])
        triad = SlackTriad(clique=0, slack=0, pair=(1, 2))
        assignment, _ = color_slack_pairs(net, [triad], [0, 1])
        assert assignment[1] == assignment[2]

    def test_round_scale_charged(self):
        net = Network.from_edges(3, [(0, 1), (0, 2)])
        triad = SlackTriad(clique=0, slack=0, pair=(1, 2))
        ledger = RoundLedger()
        color_slack_pairs(net, [triad], [0, 1], ledger=ledger)
        from repro.core.pair_coloring import PAIR_ROUND_SCALE

        entry = ledger.entries[0]
        assert entry.rounds % PAIR_ROUND_SCALE == 0


class TestVirtualRoundScale:
    def test_pair_graph_scale_constant(self):
        net = Network.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        triad = SlackTriad(clique=0, slack=0, pair=(1, 2))
        virtual = build_pair_conflict_graph(net, [triad])
        assert isinstance(virtual, VirtualNetwork)
        assert virtual.base_rounds(2) == 2 * virtual.round_scale


class TestIncomingBound:
    @pytest.mark.parametrize(
        "delta, epsilon, expected",
        [(63, 1 / 63, 0.5 * (63 - 2 - 1)), (32, 1 / 8, 0.5 * (32 - 8 - 1))],
    )
    def test_formula(self, delta, epsilon, expected):
        assert incoming_bound(delta, epsilon) == pytest.approx(expected)


class TestTriadEdgeCases:
    def test_no_type1plus_cliques_yields_no_triads(
        self, hard_instance, hard_acd
    ):
        from repro.core import classify_cliques
        from repro.core.sparsify_phase import SparsifiedMatching

        classification = classify_cliques(hard_instance.network, hard_acd)
        empty = SparsifiedMatching(edges=[], type1plus=[], type2=[])
        triads, stats = form_slack_triads(
            hard_instance.network, classification, empty,
            params=AlgorithmParameters(epsilon=0.25),
        )
        assert triads == []
        assert stats["num_triads"] == 0

    def test_missing_outgoing_edges_raise(self, hard_instance, hard_acd):
        from repro.core import classify_cliques
        from repro.core.sparsify_phase import SparsifiedMatching

        classification = classify_cliques(hard_instance.network, hard_acd)
        broken = SparsifiedMatching(edges=[], type1plus=[0], type2=[])
        with pytest.raises(InvariantViolation, match="outgoing"):
            form_slack_triads(
                hard_instance.network, classification, broken,
                params=AlgorithmParameters(epsilon=0.25),
            )


class TestLoopholeEdgeCases:
    def test_six_cycle_loophole_is_valid(self):
        net = Network.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        from repro.core import is_loophole

        assert is_loophole(net, Loophole(tuple(range(6)), "even-cycle"), 2)

    def test_duplicate_vertices_rejected(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        from repro.core import is_loophole

        assert not is_loophole(net, Loophole((0, 1, 0, 1), "even-cycle"), 2)


class TestLedgerResultInterplay:
    def test_nested_component_merge(self):
        outer = RoundLedger()
        inner = RoundLedger()
        inner.charge("component/v-rest", 7, 2)
        inner.charge("component/remaining", 5, 1)
        outer.merge(inner, prefix="post-shattering")
        assert outer.rounds_for("post-shattering/component") == 12
        assert outer.breakdown() == {"post-shattering": 12}


class TestNetworkMisc:
    def test_max_degree_empty(self):
        assert Network.from_edges(0, []).max_degree == 0

    def test_subnetwork_of_virtual(self):
        base = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        virtual = VirtualNetwork(base, [[0, 1], [2, 3]])
        sub, mapping = virtual.subnetwork([0, 1])
        assert sub.n == 2 and sub.edges() == [(0, 1)]

    def test_gather_charges_through_ledger_conventions(self):
        from repro.local import ball

        net = Network.from_edges(5, [(i, i + 1) for i in range(4)])
        view = ball(net, 2, 2)
        assert view.radius == 2
        assert set(view.boundary()) == {0, 4}
