"""CLI error paths and less-traveled options."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["paint"])


class TestErrorPaths:
    def test_color_sparse_instance_fails_cleanly(self, tmp_path, capsys):
        from repro.graphs import save_instance, sparse_dense_mix

        path = tmp_path / "sparse.json"
        save_instance(sparse_dense_mix(34, 16, seed=1), path)
        code = main(["color", str(path), "--method", "randomized"])
        assert code == 1
        assert "not dense" in capsys.readouterr().err

    def test_info_on_sparse_instance(self, tmp_path, capsys):
        from repro.graphs import save_instance, sparse_dense_mix

        path = tmp_path / "sparse.json"
        save_instance(sparse_dense_mix(34, 16, seed=1), path)
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dense=False" in out

    def test_generate_bad_parameters(self, tmp_path, capsys):
        code = main([
            "generate", "--kind", "hard", "--cliques", "5", "--delta",
            "16", "-o", str(tmp_path / "x.json"),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_verify_mismatched_length(self, tmp_path, capsys):
        from repro.graphs import hard_clique_graph, save_instance

        instance_path = tmp_path / "i.json"
        save_instance(hard_clique_graph(34, 16), instance_path)
        bad = tmp_path / "c.json"
        bad.write_text(json.dumps(
            {"format": 1, "num_colors": 16, "colors": [0, 1]}
        ))
        assert main(["verify", str(instance_path), str(bad)]) == 1
        assert "entries" in capsys.readouterr().err


class TestPgGeneration:
    def test_pg_roundtrip_and_info(self, tmp_path, capsys):
        path = tmp_path / "pg.json"
        assert main(["generate", "--kind", "pg", "--q", "7",
                     "-o", str(path)]) == 0
        assert main(["info", str(path), "--epsilon", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "114 hard" in out


class TestServeArgs:
    @pytest.mark.parametrize("argv, fragment", [
        (["serve", "--max-batch", "0"], "--max-batch"),
        (["serve", "--jobs", "-1"], "--jobs"),
        (["serve", "--linger-ms", "-1"], "--linger-ms"),
        (["serve", "--max-queue", "0"], "--max-queue"),
        (["serve", "--cache-size", "-1"], "--cache-size"),
        (["serve", "--deadline-ms", "0"], "--deadline-ms"),
        (["serve", "--cache-dir", "/tmp/c", "--cache-max-bytes", "0"],
         "--cache-max-bytes"),
        (["serve", "--cache-max-bytes", "1024"], "--cache-dir"),
    ])
    def test_serve_rejects_bad_knobs(self, argv, fragment, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err


class TestLoadgenArgs:
    def test_loadgen_needs_a_target(self, capsys):
        assert main(["loadgen"]) == 1
        assert "target" in capsys.readouterr().err

    def test_loadgen_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--mode", "silly"])

    def test_loadgen_rejects_zero_requests(self, capsys):
        assert main(["loadgen", "--unix", "/tmp/x.sock", "-n", "0"]) == 1
        assert "requests" in capsys.readouterr().err

    def test_loadgen_rejects_bad_duplicate_fraction(self, capsys):
        assert main([
            "loadgen", "--unix", "/tmp/x.sock", "--duplicate-fraction", "2",
        ]) == 1
        assert "duplicate_fraction" in capsys.readouterr().err

    def test_loadgen_unreachable_server(self, tmp_path, capsys):
        missing = tmp_path / "nowhere.sock"
        assert main(["loadgen", "--unix", str(missing), "-n", "1"]) == 1
        assert "cannot reach the server" in capsys.readouterr().err

    @pytest.mark.parametrize("argv, fragment", [
        (["loadgen", "--unix", "/tmp/x.sock", "--hot-keys", "-1"],
         "hot_keys"),
        (["loadgen", "--unix", "/tmp/x.sock", "--hot-keys", "4",
          "--zipf-s", "0"], "zipf_s"),
        (["loadgen", "--unix", "/tmp/x.sock", "--hot-keys", "4",
          "--duplicate-fraction", "0.5"], "not both"),
    ])
    def test_loadgen_rejects_bad_zipf_knobs(self, argv, fragment, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err


class TestRouterArgs:
    def test_router_requires_a_shard(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["router"])

    @pytest.mark.parametrize("argv, fragment", [
        (["router", "--shard", "unix:/tmp/a.sock", "--vnodes", "0"],
         "vnodes"),
        (["router", "--shard", "unix:/tmp/a.sock", "--attempts", "0"],
         "attempts"),
        (["router", "--shard", "unix:/tmp/a.sock", "--timeout-ms", "0"],
         "timeout_ms"),
        (["router", "--shard", "unix:/tmp/a.sock", "--hedge-ms", "-1"],
         "hedge_ms"),
        (["router", "--shard", "unix:/tmp/a.sock", "--max-inflight", "0"],
         "max_inflight"),
        (["router", "--shard", "unix:/tmp/a.sock",
          "--shard", "unix:/tmp/a.sock"], "duplicate"),
    ])
    def test_router_rejects_bad_knobs(self, argv, fragment, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err


class TestFleetArgs:
    @pytest.mark.parametrize("argv, fragment", [
        (["fleet", "--shards", "0"], "shards"),
        (["fleet", "--jobs", "-1"], "jobs"),
        (["fleet", "--drain-timeout", "0"], "drain_timeout"),
        (["fleet", "--max-restarts", "-1"], "max_restarts"),
        (["fleet", "--cache-max-bytes", "0"], "cache_max_bytes"),
    ])
    def test_fleet_rejects_bad_knobs(self, argv, fragment, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "error:" in err and fragment in err
