"""Tests for instance/coloring (de)serialization."""

from __future__ import annotations

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    hard_clique_graph,
    load_coloring,
    load_instance,
    save_coloring,
    save_instance,
)


class TestInstanceIO:
    def test_roundtrip(self, tmp_path):
        instance = hard_clique_graph(34, 16, seed=3)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.network.edges() == instance.network.edges()
        assert loaded.cliques == instance.cliques
        assert loaded.delta == instance.delta
        assert loaded.meta["seed"] == 3

    def test_uids_preserved(self, tmp_path):
        instance = hard_clique_graph(34, 16)
        instance.network.uids.reverse()
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        assert load_instance(path).network.uids == instance.network.uids

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999}')
        with pytest.raises(GraphStructureError, match="format"):
            load_instance(path)


class TestColoringIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "coloring.json"
        save_coloring([0, 1, 2, 0], 3, path)
        colors, num_colors = load_coloring(path)
        assert colors == [0, 1, 2, 0]
        assert num_colors == 3
