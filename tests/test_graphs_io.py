"""Tests for instance/coloring (de)serialization."""

from __future__ import annotations

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    canonical_instance_hash,
    hard_clique_graph,
    load_coloring,
    load_instance,
    mixed_dense_graph,
    save_coloring,
    save_instance,
)


class TestInstanceIO:
    def test_roundtrip(self, tmp_path):
        instance = hard_clique_graph(34, 16, seed=3)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.network.edges() == instance.network.edges()
        assert loaded.cliques == instance.cliques
        assert loaded.delta == instance.delta
        assert loaded.meta["seed"] == 3

    def test_uids_preserved(self, tmp_path):
        instance = hard_clique_graph(34, 16)
        instance.network.uids.reverse()
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        assert load_instance(path).network.uids == instance.network.uids

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 999}')
        with pytest.raises(GraphStructureError, match="format"):
            load_instance(path)


class TestCanonicalHash:
    def test_save_load_preserves_hash(self, tmp_path):
        instance = hard_clique_graph(16, 8, seed=3)
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        assert load_instance(path).canonical_hash() == instance.canonical_hash()

    def test_save_load_preserves_hash_with_custom_uids(self, tmp_path):
        instance = hard_clique_graph(16, 8, seed=3)
        instance.network.uids.reverse()
        path = tmp_path / "instance.json"
        save_instance(instance, path)
        assert load_instance(path).canonical_hash() == instance.canonical_hash()

    def test_edge_order_is_canonicalized(self):
        instance = hard_clique_graph(16, 8, seed=1)
        edges = instance.network.edges()
        shuffled = list(reversed([(v, u) for u, v in edges]))
        assert canonical_instance_hash(
            instance.n, shuffled, instance.delta, instance.network.uids
        ) == instance.canonical_hash()

    def test_distinct_topologies_distinct_hashes(self):
        a = hard_clique_graph(16, 8, seed=1)
        b = hard_clique_graph(16, 8, seed=2)
        c = mixed_dense_graph(16, 8, easy_fraction=0.25, seed=1)
        assert len({a.canonical_hash(), b.canonical_hash(), c.canonical_hash()}) == 3

    def test_uids_are_part_of_the_key(self):
        # The pipeline breaks symmetry by uid, so a uid permutation can
        # change the coloring — it must not share a cache entry.
        instance = hard_clique_graph(16, 8, seed=1)
        before = instance.canonical_hash()
        instance.network.uids.reverse()
        assert instance.canonical_hash() != before

    def test_planted_structure_is_not_part_of_the_key(self):
        instance = hard_clique_graph(16, 8, seed=1)
        before = instance.canonical_hash()
        instance.meta["note"] = "changed"
        instance.cliques = [list(c) for c in reversed(instance.cliques)]
        assert instance.canonical_hash() == before

    def test_default_uids_match_explicit_range(self):
        instance = hard_clique_graph(16, 8, seed=1)
        edges = instance.network.edges()
        assert canonical_instance_hash(
            instance.n, edges, instance.delta
        ) == canonical_instance_hash(
            instance.n, edges, instance.delta, list(range(instance.n))
        )


class TestColoringIO:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "coloring.json"
        save_coloring([0, 1, 2, 0], 3, path)
        colors, num_colors = load_coloring(path)
        assert colors == [0, 1, 2, 0]
        assert num_colors == 3
