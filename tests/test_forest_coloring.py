"""Tests for Cole-Vishkin forest 3-coloring."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import (
    cv_forest_coloring,
    forest_decomposition,
    verify_forest_coloring,
)


def random_forest(n: int, seed: int) -> tuple[Network, list[int]]:
    rng = random.Random(seed)
    parent = [-1]
    edges = []
    for v in range(1, n):
        if rng.random() < 0.1:
            parent.append(-1)
        else:
            p = rng.randrange(v)
            parent.append(p)
            edges.append((v, p))
    uids = list(range(n))
    rng.shuffle(uids)
    return Network.from_edges(n, edges, uids), parent


class TestColeVishkin:
    def test_three_colors_on_random_forests(self):
        net, parent = random_forest(400, 1)
        colors, result = cv_forest_coloring(net, parent)
        verify_forest_coloring(parent, colors)
        assert max(colors) <= 2

    def test_log_star_rounds(self):
        """Rounds barely move across four orders of magnitude of IDs."""
        rounds = []
        for exponent in (3, 6, 12):
            net, parent = random_forest(100, 2)
            spread = Network(
                net.adjacency, [u * 10 ** exponent + 3 for u in net.uids]
            )
            _, result = cv_forest_coloring(
                spread, parent, id_space=100 * 10 ** exponent + 4
            )
            rounds.append(result.rounds)
        assert rounds[-1] - rounds[0] <= 3

    def test_path_and_star(self):
        path = Network.from_edges(6, [(i, i + 1) for i in range(5)])
        colors, _ = cv_forest_coloring(path, [-1, 0, 1, 2, 3, 4])
        verify_forest_coloring([-1, 0, 1, 2, 3, 4], colors)

        star = Network.from_edges(6, [(0, i) for i in range(1, 6)])
        colors, _ = cv_forest_coloring(star, [-1, 0, 0, 0, 0, 0])
        assert len({colors[i] for i in range(1, 6)} | {colors[0]}) >= 2

    def test_single_vertex(self):
        net = Network.from_edges(1, [])
        colors, _ = cv_forest_coloring(net, [-1])
        assert colors[0] in (0, 1, 2)

    def test_non_forest_network_rejected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(SubroutineError, match="forest"):
            cv_forest_coloring(net, [-1, 0, 1])

    def test_bad_parent_rejected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(SubroutineError, match="neighbor"):
            cv_forest_coloring(net, [-1, 0, 0])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_property_always_three_colors(self, seed):
        net, parent = random_forest(60, seed)
        colors, _ = cv_forest_coloring(net, parent)
        verify_forest_coloring(parent, colors)


class TestComposition:
    def test_forest_decomposition_then_cv(self, hard_instance):
        """Arboricity route end-to-end: decompose the dense instance
        into forests and 3-color one of them."""
        net = hard_instance.network
        forest_of, oriented, _ = forest_decomposition(net, 8)
        # Extract forest 0 as a rooted structure (edges point tail->head;
        # heads are parents).
        parent = [-1] * net.n
        edges = []
        for (tail, head), forest in zip(oriented, forest_of):
            if forest == 0:
                parent[tail] = head
                edges.append((tail, head))
        sub = Network.from_edges(net.n, edges, net.uids)
        colors, _ = cv_forest_coloring(sub, parent)
        verify_forest_coloring(parent, colors)
