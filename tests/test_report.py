"""Tests for the DOT figure exports."""

from __future__ import annotations

import re

from repro.constants import AlgorithmParameters
from repro.core import (
    build_pair_conflict_graph,
    classify_cliques,
    color_slack_pairs,
    compute_balanced_matching,
    delta_color_deterministic,
    form_slack_triads,
    sparsify_matching,
)
from repro.local import RoundLedger
from repro.report import coloring_to_dot, pair_graph_to_dot, triads_to_dot

PARAMS = AlgorithmParameters(epsilon=0.25)


def _balanced_dot(dot: str) -> bool:
    return dot.count("{") == dot.count("}")


class TestColoringDot:
    def test_full_instance(self, hard_instance):
        result = delta_color_deterministic(hard_instance.network, params=PARAMS)
        dot = coloring_to_dot(
            hard_instance.network, result.colors,
            cliques=hard_instance.cliques,
        )
        assert dot.startswith("graph coloring {")
        assert _balanced_dot(dot)
        assert dot.count(" -- ") == hard_instance.network.edge_count
        assert "cluster_0" in dot

    def test_uncolored_defaults_to_white(self, hard_instance):
        dot = coloring_to_dot(hard_instance.network)
        assert 'fillcolor="white"' in dot


class TestFigureDots:
    def test_figure2_and_figure3(self, hard_instance, hard_acd):
        network = hard_instance.network
        classification = classify_cliques(network, hard_acd)
        balanced = compute_balanced_matching(
            network, classification, params=PARAMS, ledger=RoundLedger()
        )
        sparsified = sparsify_matching(
            network, classification, balanced, params=PARAMS,
            ledger=RoundLedger(),
        )
        triads, _ = form_slack_triads(
            network, classification, sparsified, params=PARAMS,
            ledger=RoundLedger(),
        )
        figure2 = triads_to_dot(network, triads[:3], hard_acd)
        assert _balanced_dot(figure2)
        assert figure2.count("doublecircle") == 3  # the slack vertices
        assert figure2.count("shape=box") >= 3

        virtual = build_pair_conflict_graph(network, triads)
        pair_colors, _ = color_slack_pairs(
            network, triads, list(range(16)), ledger=RoundLedger()
        )
        figure3 = pair_graph_to_dot(virtual, pair_colors)
        assert _balanced_dot(figure3)
        assert len(re.findall(r"p\d+ \[label", figure3)) == len(triads)
