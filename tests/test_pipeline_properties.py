"""Property-based end-to-end tests: random instances, always proper.

Hypothesis drives the generator parameters (clique counts, Delta, easy
fractions, seeds); whatever instance comes out, every pipeline must
either produce a verified Delta-coloring or raise a typed error —
silent improper colorings are the one outcome that must never occur
(the pipelines already self-verify; these tests check it independently).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic, delta_color_randomized
from repro.core.sparse import delta_color_general
from repro.errors import InvariantViolation
from repro.graphs import hard_clique_graph, mixed_dense_graph, sparse_dense_mix
from repro.verify.coloring import verify_coloring

PARAMS = AlgorithmParameters(epsilon=0.25)

clique_counts = st.sampled_from([34, 36, 40])
deltas = st.sampled_from([12, 16])
seeds = st.integers(min_value=0, max_value=10 ** 6)


@settings(max_examples=10, deadline=None)
@given(num_cliques=clique_counts, delta=deltas, seed=seeds)
def test_deterministic_on_random_hard_instances(num_cliques, delta, seed):
    instance = hard_clique_graph(num_cliques, delta, seed=seed)
    result = delta_color_deterministic(instance.network, params=PARAMS)
    verify_coloring(instance.network, result.colors, delta)


@settings(max_examples=10, deadline=None)
@given(
    num_cliques=clique_counts,
    easy_fraction=st.sampled_from([0.1, 0.3, 0.7]),
    seed=seeds,
)
def test_deterministic_on_random_mixed_instances(
    num_cliques, easy_fraction, seed
):
    instance = mixed_dense_graph(
        num_cliques, 16, easy_fraction=easy_fraction, seed=seed
    )
    result = delta_color_deterministic(instance.network, params=PARAMS)
    verify_coloring(instance.network, result.colors, 16)


@settings(max_examples=10, deadline=None)
@given(
    seed=seeds,
    activation=st.sampled_from([0.05, 1.0 / 3.0, 0.9]),
)
def test_randomized_on_random_parameters(seed, activation):
    instance = hard_clique_graph(34, 16, seed=seed % 50)
    result = delta_color_randomized(
        instance.network, params=PARAMS, seed=seed,
        activation_probability=activation,
    )
    verify_coloring(instance.network, result.colors, 16)


@settings(max_examples=6, deadline=None)
@given(seed=seeds, attachments=st.sampled_from([2, 4, 6]))
def test_general_on_random_sparse_mixes(seed, attachments):
    instance = sparse_dense_mix(
        34, 16, attachments=attachments, seed=seed % 100
    )
    try:
        result = delta_color_general(instance.network, params=PARAMS, seed=seed)
    except InvariantViolation:
        # Some random mixes fall outside the sparse extension's regime
        # (slack generation cannot pair every sparse vertex, cf. Claim 1);
        # a typed refusal is an acceptable outcome per the contract above.
        return
    verify_coloring(instance.network, result.colors, 16)
