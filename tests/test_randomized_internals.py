"""Tests for the randomized pipeline's internals (Section 4)."""

from __future__ import annotations

import random

import pytest

from repro.constants import AlgorithmParameters
from repro.core import classify_cliques, place_t_nodes
from repro.core.randomized import (
    _clique_components,
    _color_component,
    _shattered_cliques,
    large_delta_threshold,
)
from repro.local import RoundLedger
from repro.verify import verify_coloring

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def classification(hard_instance, hard_acd):
    return classify_cliques(hard_instance.network, hard_acd)


class TestLargeDeltaThreshold:
    def test_monotone(self):
        assert large_delta_threshold(100) < large_delta_threshold(10 ** 6)

    def test_small_n(self):
        assert large_delta_threshold(1) == 1.0


class TestShatteredCliques:
    def test_no_triads_everything_bad(self, hard_instance, classification):
        colors: list[int | None] = [None] * hard_instance.n
        bad, depths, mapping, iterations = _shattered_cliques(
            hard_instance.network, classification, [], colors, layer_depth=6
        )
        assert sorted(bad) == sorted(classification.hard)
        assert iterations >= 1

    def test_full_coverage_no_bad(self, hard_instance, classification):
        rng = random.Random(0)
        placement = place_t_nodes(
            hard_instance.network, classification, rng=rng,
            max_iterations=4, target_bad_fraction=0.0,
        )
        colors: list[int | None] = [None] * hard_instance.n
        for triad in placement.triads:
            colors[triad.pair[0]] = 0
            colors[triad.pair[1]] = 0
        bad, depths, mapping, _ = _shattered_cliques(
            hard_instance.network, classification, placement.triads,
            colors, layer_depth=6,
        )
        assert not bad
        # Every uncolored hard vertex got a finite depth.
        assert all(d is not None for d in depths)

    def test_tight_horizon_creates_bad_cliques(
        self, hard_instance, classification
    ):
        rng = random.Random(1)
        placement = place_t_nodes(
            hard_instance.network, classification, rng=rng,
            activation_probability=0.05, max_iterations=1,
        )
        colors: list[int | None] = [None] * hard_instance.n
        for triad in placement.triads:
            colors[triad.pair[0]] = 0
            colors[triad.pair[1]] = 0
        bad, _, _, _ = _shattered_cliques(
            hard_instance.network, classification, placement.triads,
            colors, layer_depth=1,
        )
        # Depth 1 around a handful of T-nodes cannot cover 34 cliques.
        assert bad

    def test_depths_exclude_bad_cliques(self, hard_instance, classification):
        rng = random.Random(2)
        placement = place_t_nodes(
            hard_instance.network, classification, rng=rng,
            activation_probability=0.05, max_iterations=1,
        )
        colors: list[int | None] = [None] * hard_instance.n
        for triad in placement.triads:
            colors[triad.pair[0]] = 0
            colors[triad.pair[1]] = 0
        bad, depths, mapping, _ = _shattered_cliques(
            hard_instance.network, classification, placement.triads,
            colors, layer_depth=2,
        )
        acd = classification.acd
        bad_set = set(bad)
        for i, v in enumerate(mapping):
            assert acd.clique_index[v] not in bad_set
            assert depths[i] is not None and depths[i] <= 2


class TestColorComponent:
    def test_whole_graph_as_one_component(self, hard_instance, classification):
        """Zero T-nodes: the single component must color itself with the
        modified deterministic algorithm."""
        colors: list[int | None] = [None] * hard_instance.n
        components = _clique_components(
            hard_instance.network, classification, list(classification.hard)
        )
        assert len(components) == 1
        ledger = RoundLedger()
        _color_component(
            hard_instance.network, classification, components[0],
            colors, list(range(16)), params=PARAMS, ledger=ledger,
        )
        verify_coloring(hard_instance.network, colors, 16)
        assert ledger.total_rounds > 0

    def test_small_component_uses_boundary_slack(
        self, hard_instance, classification
    ):
        """One bad clique surrounded by uncolored good cliques must be
        colored entirely through boundary loopholes."""
        colors: list[int | None] = [None] * hard_instance.n
        component = [classification.hard[0]]
        ledger = RoundLedger()
        _color_component(
            hard_instance.network, classification, component,
            colors, list(range(16)), params=PARAMS, ledger=ledger,
        )
        members = classification.acd.cliques[component[0]]
        assert all(colors[v] is not None for v in members)
        outside = [
            v for v in range(hard_instance.n) if v not in set(members)
        ]
        assert all(colors[v] is None for v in outside)
