"""Tests for structural validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    assert_no_delta_plus_one_clique,
    assert_regular,
    check_instance,
    hard_clique_graph,
)
from repro.local import Network


def complete_graph(n: int) -> Network:
    return Network.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


class TestDeltaPlusOneClique:
    def test_complete_graph_detected(self):
        with pytest.raises(GraphStructureError, match="Delta\\+1|clique"):
            assert_no_delta_plus_one_clique(complete_graph(5))

    def test_clique_plus_pendant_is_fine(self):
        # K4 with a pendant vertex: Delta = 4, largest clique has 4 < 5.
        net = Network.from_edges(
            5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)]
        )
        assert_no_delta_plus_one_clique(net)

    def test_hard_instance_is_clean(self, hard_instance):
        assert_no_delta_plus_one_clique(hard_instance.network)

    def test_triangle_detected(self):
        # A triangle is a (Delta+1)-clique for Delta = 2.
        with pytest.raises(GraphStructureError):
            assert_no_delta_plus_one_clique(complete_graph(3))

    def test_even_cycle_is_fine(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert_no_delta_plus_one_clique(net)


class TestRegularity:
    def test_regular_passes(self, hard_instance):
        assert_regular(hard_instance.network, 16)

    def test_irregular_fails(self, mixed_instance):
        with pytest.raises(GraphStructureError):
            assert_regular(mixed_instance.network, 16)


class TestCheckInstance:
    def test_tampered_clique_detected(self):
        instance = hard_clique_graph(34, 16)
        instance.cliques[0][0], instance.cliques[1][0] = (
            instance.cliques[1][0],
            instance.cliques[0][0],
        )
        with pytest.raises(GraphStructureError):
            check_instance(instance)
