"""Tests for hyperedge grabbing (Lemma 5)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubroutineError
from repro.subroutines import (
    Hypergraph,
    heg_feasible,
    hyperedge_grabbing,
    verify_heg,
)


def ring_hypergraph(n: int, extra_shift: int = 7) -> Hypergraph:
    """Rank 3 hyperedges along a ring plus rank-2 chords: min degree 5."""
    edges = [(i, (i + 1) % n, (i + 2) % n) for i in range(n)]
    edges += [(i, (i + extra_shift) % n) for i in range(n)]
    return Hypergraph(n, edges)


class TestHypergraph:
    def test_rank_and_degree(self):
        h = ring_hypergraph(20)
        assert h.rank == 3
        assert h.min_degree == 5

    def test_incidence(self):
        h = Hypergraph(3, [(0, 1), (1, 2)])
        assert h.incident(1) == [0, 1]

    def test_out_of_range_member_rejected(self):
        with pytest.raises(SubroutineError):
            Hypergraph(2, [(0, 5)])

    def test_duplicate_members_deduplicated(self):
        h = Hypergraph(3, [(0, 0, 1)])
        assert h.edges[0] == (0, 1)


class TestGrabbing:
    def test_deterministic(self):
        h = ring_hypergraph(40)
        grab, result = hyperedge_grabbing(h)
        verify_heg(h, grab)

    def test_randomized(self):
        h = ring_hypergraph(40)
        grab, result = hyperedge_grabbing(h, deterministic=False, seed=1)
        verify_heg(h, grab)

    def test_empty(self):
        grab, result = hyperedge_grabbing(Hypergraph(0, []))
        assert grab == [] and result.rounds == 0

    def test_slack_precondition_enforced(self):
        # rank = min degree = 2: Lemma 5's r < delta fails.
        h = Hypergraph(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(SubroutineError, match="precondition"):
            hyperedge_grabbing(h)

    def test_tight_instance_solvable_without_slack(self):
        # A perfect-matching-like instance: each vertex has its own edge.
        h = Hypergraph(4, [(0,), (1,), (2,), (3,), (0, 1), (2, 3)])
        grab, _ = hyperedge_grabbing(h, require_slack=False)
        verify_heg(h, grab)

    def test_infeasible_raises(self):
        # 3 vertices, 2 hyperedges: pigeonhole makes HEG impossible.
        h = Hypergraph(3, [(0, 1, 2), (0, 1, 2)])
        with pytest.raises(SubroutineError, match="infeasible|Hall"):
            hyperedge_grabbing(h, require_slack=False)

    def test_isolated_vertex_rejected(self):
        h = Hypergraph(2, [(0,)])
        with pytest.raises(SubroutineError, match="incident"):
            hyperedge_grabbing(h, require_slack=False)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        n=st.integers(min_value=10, max_value=40),
    )
    def test_property_random_feasible_instances(self, seed, n):
        rng = random.Random(seed)
        edges = [(i, (i + 1) % n, (i + 2) % n) for i in range(n)]
        edges += [
            (i, (i + rng.randrange(3, n - 1)) % n) for i in range(n)
        ]
        h = Hypergraph(n, edges)
        if h.min_degree > h.rank:
            grab, _ = hyperedge_grabbing(h)
            verify_heg(h, grab)


class TestFeasibility:
    def test_feasible_certificate(self):
        assert heg_feasible(ring_hypergraph(20))

    def test_infeasible_certificate(self):
        h = Hypergraph(3, [(0, 1, 2), (0, 1, 2)])
        assert not heg_feasible(h)

    def test_exactly_matching_edges(self):
        h = Hypergraph(3, [(0,), (1,), (2,)])
        assert heg_feasible(h)


class TestAugmentation:
    def test_augment_stuck_reassigns_via_alternating_path(self):
        """Directly exercise the augmenting-path fallback: vertex 0's
        only hyperedge is pre-claimed, forcing a chain reassignment."""
        from repro.subroutines.heg import _augment_stuck

        h = Hypergraph(3, [(0, 1), (1, 2), (2,)])
        # Adversarial partial state: 1 grabbed edge 0 (vertex 0's only
        # option), 2 grabbed edge 1 (vertex 1's alternative).
        grab: list = [None, 0, 1]
        claimed = {0: 1, 1: 2}
        rounds = _augment_stuck(h, grab, claimed)
        verify_heg(h, grab)
        assert rounds > 0
        assert grab[0] == 0  # the chain freed vertex 0's only edge

    def test_augment_infeasible_raises(self):
        from repro.errors import SubroutineError
        from repro.subroutines.heg import _augment_stuck

        h = Hypergraph(2, [(0, 1)])
        grab: list = [None, 0]
        claimed = {0: 1}
        with pytest.raises(SubroutineError, match="Hall|infeasible"):
            _augment_stuck(h, grab, claimed)

    def test_augment_noop_when_complete(self):
        from repro.subroutines.heg import _augment_stuck

        h = Hypergraph(2, [(0,), (1,)])
        grab: list = [0, 1]
        assert _augment_stuck(h, grab, {0: 0, 1: 1}) == 0
