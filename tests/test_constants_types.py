"""Tests for the constants bundle and public result types."""

from __future__ import annotations

import pytest

from repro.constants import (
    EPSILON,
    PAPER_PARAMETERS,
    SUBCLIQUE_COUNT,
    AlgorithmParameters,
)
from repro.local import RoundLedger
from repro.types import ColoringResult


class TestPaperConstants:
    def test_paper_values(self):
        assert EPSILON == pytest.approx(1 / 63)
        assert SUBCLIQUE_COUNT == 28
        assert PAPER_PARAMETERS.epsilon == EPSILON
        assert PAPER_PARAMETERS.subclique_count == SUBCLIQUE_COUNT

    def test_epsilon_bounds(self):
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=0)
        with pytest.raises(ValueError):
            AlgorithmParameters(epsilon=1.5)

    def test_outgoing_kept_minimum(self):
        # A slack triad needs two outgoing edges (Section 3.5).
        with pytest.raises(ValueError, match="outgoing_kept"):
            AlgorithmParameters(outgoing_kept=1)

    def test_loophole_size_minimum(self):
        with pytest.raises(ValueError, match="max_loophole_size"):
            AlgorithmParameters(max_loophole_size=3)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_PARAMETERS.epsilon = 0.5  # type: ignore[misc]


class TestColoringResult:
    def test_round_accessors(self):
        ledger = RoundLedger()
        ledger.charge("hard/x", 10, 3)
        ledger.charge("easy/y", 5, 2)
        result = ColoringResult(
            colors=[0, 1], num_colors=2, ledger=ledger, algorithm="t"
        )
        assert result.rounds == 15
        assert result.messages == 5
        assert result.phase_rounds() == {"hard": 10, "easy": 5}

    def test_stats_default(self):
        result = ColoringResult(
            colors=[], num_colors=0, ledger=RoundLedger(), algorithm="t"
        )
        assert result.stats == {}
