"""Tests for (deg+1)-list coloring."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import (
    deg_plus_one_list_coloring,
    randomized_list_coloring,
    validate_lists,
)
from tests.conftest import random_network


def minimal_lists(net: Network) -> list[list[int]]:
    return [list(range(net.degree(v) + 1)) for v in range(net.n)]


class TestValidation:
    def test_too_small_list_rejected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        lists = [[0], [0], [0, 1]]  # vertex 1 has degree 2 but 1 color
        with pytest.raises(SubroutineError, match="deg"):
            validate_lists(net, lists)

    def test_duplicate_colors_do_not_inflate_lists(self):
        net = Network.from_edges(2, [(0, 1)])
        with pytest.raises(SubroutineError):
            validate_lists(net, [[0, 0], [0, 1]])

    def test_wrong_length_rejected(self):
        net = Network.from_edges(2, [(0, 1)])
        with pytest.raises(SubroutineError, match="per vertex"):
            validate_lists(net, [[0, 1]])


class TestDeterministic:
    def test_minimal_lists(self):
        net = random_network(120, 360, seed=3)
        colors, _ = deg_plus_one_list_coloring(net, minimal_lists(net))
        assert all(colors[u] != colors[v] for u, v in net.edges())

    def test_arbitrary_disjointish_lists(self):
        rng = random.Random(4)
        net = random_network(80, 200, seed=4)
        lists = []
        for v in range(net.n):
            size = net.degree(v) + 1 + rng.randrange(3)
            lists.append(rng.sample(range(100), size))
        colors, _ = deg_plus_one_list_coloring(net, lists)
        for v in range(net.n):
            assert colors[v] in set(lists[v])
        assert all(colors[u] != colors[v] for u, v in net.edges())

    def test_colors_within_lists(self):
        net = random_network(50, 120, seed=5)
        lists = [[10 + c for c in range(net.degree(v) + 1)] for v in range(net.n)]
        colors, _ = deg_plus_one_list_coloring(net, lists)
        assert all(colors[v] >= 10 for v in range(net.n))

    def test_empty_network(self):
        net = Network.from_edges(0, [])
        colors, result = deg_plus_one_list_coloring(net, [])
        assert colors == [] and result.rounds == 0


class TestRandomized:
    def test_minimal_lists(self):
        net = random_network(120, 360, seed=6)
        colors, result = randomized_list_coloring(net, minimal_lists(net), seed=1)
        assert all(colors[u] != colors[v] for u, v in net.edges())

    def test_seed_reproducibility(self):
        net = random_network(60, 150, seed=7)
        a, _ = randomized_list_coloring(net, minimal_lists(net), seed=42)
        b, _ = randomized_list_coloring(net, minimal_lists(net), seed=42)
        assert a == b

    def test_rounds_logarithmic(self):
        net = random_network(400, 1200, seed=8)
        _, result = randomized_list_coloring(net, minimal_lists(net), seed=2)
        assert result.rounds <= 40  # O(log n) w.h.p., generous slack

    def test_isolated_vertex(self):
        net = Network.from_edges(1, [])
        colors, _ = randomized_list_coloring(net, [[3]], seed=0)
        assert colors == [3]


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10 ** 6),
        extra=st.integers(min_value=0, max_value=3),
    )
    def test_deterministic_always_proper(self, seed, extra):
        net = random_network(30, 70, seed=seed)
        lists = [
            list(range(net.degree(v) + 1 + extra)) for v in range(net.n)
        ]
        colors, _ = deg_plus_one_list_coloring(net, lists)
        assert all(colors[u] != colors[v] for u, v in net.edges())

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_randomized_always_proper(self, seed):
        net = random_network(30, 70, seed=seed)
        lists = [list(range(net.degree(v) + 1)) for v in range(net.n)]
        colors, _ = randomized_list_coloring(net, lists, seed=seed)
        assert all(colors[u] != colors[v] for u, v in net.edges())
