"""ID-robustness: symmetry breaking must work for any unique ID assignment.

All deterministic symmetry breaking in the LOCAL model goes through the
identifiers; these tests shuffle and inflate the uids and assert every
pipeline still produces verified colorings (with possibly different —
but always proper — outputs).
"""

from __future__ import annotations

import random

import pytest

from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic, delta_color_randomized
from repro.graphs import hard_clique_graph, mixed_dense_graph
from repro.local import Network
from repro.verify.coloring import verify_coloring

PARAMS = AlgorithmParameters(epsilon=0.25)


def reuid(network: Network, seed: int, *, inflate: bool = False) -> Network:
    rng = random.Random(seed)
    uids = list(range(network.n))
    rng.shuffle(uids)
    if inflate:
        uids = [u * 9973 + 17 for u in uids]
    return Network(network.adjacency, uids, name=network.name, validate=False)


class TestIdRobustness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_deterministic_under_shuffled_ids(self, hard_instance, seed):
        shuffled = reuid(hard_instance.network, seed)
        result = delta_color_deterministic(shuffled, params=PARAMS)
        verify_coloring(shuffled, result.colors, 16)

    def test_deterministic_under_inflated_ids(self, hard_instance):
        inflated = reuid(hard_instance.network, 4, inflate=True)
        result = delta_color_deterministic(inflated, params=PARAMS)
        verify_coloring(inflated, result.colors, 16)

    def test_randomized_under_shuffled_ids(self, hard_instance):
        shuffled = reuid(hard_instance.network, 5)
        result = delta_color_randomized(shuffled, params=PARAMS, seed=0)
        verify_coloring(shuffled, result.colors, 16)

    def test_mixed_instance_under_shuffled_ids(self):
        instance = mixed_dense_graph(34, 16, easy_fraction=0.3, seed=2)
        shuffled = reuid(instance.network, 6)
        result = delta_color_deterministic(shuffled, params=PARAMS)
        verify_coloring(shuffled, result.colors, 16)

    def test_different_ids_may_change_but_never_break_output(
        self, hard_instance
    ):
        a = delta_color_deterministic(
            reuid(hard_instance.network, 7), params=PARAMS
        )
        b = delta_color_deterministic(
            reuid(hard_instance.network, 8), params=PARAMS
        )
        # Both proper; equality is not required (and typically false).
        assert len(a.colors) == len(b.colors)


class TestExternalDegreeTwo:
    """Pipelines on k = 2 instances: heterogeneous anchors, possibly a
    few easy cliques from exotic loopholes (H4 hits)."""

    @pytest.fixture(scope="class")
    def k2_instance(self):
        return hard_clique_graph(64, 16, external_per_vertex=2, seed=1)

    def test_deterministic(self, k2_instance):
        result = delta_color_deterministic(k2_instance.network, params=PARAMS)
        verify_coloring(k2_instance.network, result.colors, 16)

    def test_randomized(self, k2_instance):
        result = delta_color_randomized(
            k2_instance.network, params=PARAMS, seed=0
        )
        verify_coloring(k2_instance.network, result.colors, 16)

    def test_lemma9_external_count(self, k2_instance):
        """Lemma 9.2 with |C| = Delta - 1: e_C = 2 external neighbors."""
        from repro.acd import compute_acd
        from repro.core import classify_cliques

        acd = compute_acd(k2_instance.network, epsilon=0.25)
        classification = classify_cliques(k2_instance.network, acd)
        net = k2_instance.network
        for index in classification.hard[:5]:
            members = set(acd.cliques[index])
            for v in members:
                external = [u for u in net.adjacency[v] if u not in members]
                assert len(external) == 16 - len(members) + 1 == 2
