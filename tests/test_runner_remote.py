"""Executor equivalence and failure drills for the remote campaign plane.

The contract under test: ``run_campaign(executor="remote", ...)`` must
produce rows *byte-identical* to the inline and pool executors — under
clean runs, checkpoint/resume, straggler hedging, and killed backends —
because server-side cells run the exact same
:func:`repro.runner.campaign.run_cell_on_network` core.

Most tests use :class:`FakeBackend`: an in-process NDJSON listener that
answers the serve protocol (register / cell / health / metrics) by
calling the real :func:`repro.serve.execute_batch`, so the wire path is
exercised without subprocess spin-up.  One test drives a real
two-subprocess ``repro serve`` fleet end to end.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.runner import CampaignCell, load_journal, run_campaign
from repro.runner.remote import RemoteOptions
from repro.serve import execute_batch, normalize_instance_payload

#: Small-but-real cells: big enough to exercise run_cell, fast enough
#: for a test suite.
SMALL = dict(workload="hard", num_cliques=16, delta=8, epsilon=0.25)

#: Probe/tick cadence tuned for tests (the defaults pace real fleets).
FAST = dict(probe_interval_s=0.1, probe_timeout_s=0.5, tick_s=0.01)

#: Serializes telemetry-collector installation across fake-backend
#: threads (the repro.obs collector slot is process-global).
EXEC_LOCK = threading.Lock()


def small_cells(count: int = 6, **extra) -> list[CampaignCell]:
    methods = ("randomized", "deterministic")
    return [
        CampaignCell(
            label=f"c{i}", seed=i, method=methods[i % 2], **SMALL, **extra
        )
        for i in range(count)
    ]


def row_bytes(result) -> bytes:
    return json.dumps(result.rows, sort_keys=True).encode()


class FakeBackend:
    """An in-process serve stand-in speaking the NDJSON protocol.

    Runs its own event loop in a daemon thread on a UNIX socket and
    executes ``cell`` requests through the real
    :func:`repro.serve.execute_batch` — so a row from a fake backend is
    the same bytes a real shard would return.  Knobs:

    delay:
        label -> seconds to sleep (non-blocking) before answering that
        cell; models a straggling shard.
    fail_labels:
        labels answered with a deterministic ``internal`` error.
    die_after:
        after serving this many cells, the next cell request aborts
        every connection and stops listening — a SIGKILL stand-in.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        delay: dict[str, float] | None = None,
        fail_labels: tuple[str, ...] = (),
        die_after: int | None = None,
    ) -> None:
        self.path = str(path)
        self.spec = f"unix:{self.path}"
        self.delay = dict(delay or {})
        self.fail_labels = set(fail_labels)
        self.die_after = die_after
        self.instances: dict[str, dict] = {}
        self.cells = 0
        self.registers = 0
        self._writers: set[asyncio.StreamWriter] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def __enter__(self) -> "FakeBackend":
        self._thread.start()
        assert self._ready.wait(10), "fake backend did not start"
        return self

    def __exit__(self, *exc) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=10)

    def _main(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._on_connection, path=self.path
        )
        self._ready.set()
        await self._stop.wait()
        self._kill()

    def _kill(self) -> None:
        """Abort every connection and stop listening (no draining)."""
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._handle(json.loads(line), writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle(
        self,
        data: dict,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        body = await self._respond(data)
        if body is None:
            return  # killed mid-request: dead processes say nothing
        async with lock:
            try:
                writer.write(json.dumps(body).encode() + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, data: dict) -> dict | None:
        op = data.get("op")
        rid = data.get("id")
        if op == "health":
            return {"id": rid, "ok": True, "op": "health", "status": "ok"}
        if op == "metrics":
            return {
                "id": rid, "ok": True, "op": "metrics",
                "metrics": {"gauges": {
                    "serve.in_flight": 0.0, "serve.queue_depth": 0.0,
                }},
                "server": {},
            }
        if op == "register":
            self.registers += 1
            instance_hash, slim = normalize_instance_payload(
                data["instance"]
            )
            self.instances[instance_hash] = slim
            return {
                "id": rid, "ok": True, "op": "register",
                "instance_hash": instance_hash,
                "n": slim["n"], "delta": slim["delta"],
            }
        if op == "cell":
            return await self._respond_cell(data, rid)
        return {
            "id": rid, "ok": False,
            "error": {"code": "unsupported", "message": f"op {op!r}"},
        }

    async def _respond_cell(self, data: dict, rid) -> dict | None:
        cell = data["cell"]
        label = cell.get("label")
        delay = self.delay.get(label, 0.0)
        if delay:
            await asyncio.sleep(delay)
        if self.die_after is not None and self.cells >= self.die_after:
            self._kill()
            return None
        self.cells += 1
        instance_hash = data["instance_hash"]
        if instance_hash not in self.instances:
            return {
                "id": rid, "ok": False, "op": "cell",
                "error": {
                    "code": "unknown_instance",
                    "message": f"no instance {instance_hash!r}",
                },
            }
        if label in self.fail_labels:
            return {
                "id": rid, "ok": False, "op": "cell",
                "error": {
                    "code": "internal", "message": "injected failure",
                },
            }
        spec = {
            "kind": "cell", "key": 0,
            "instance_hash": instance_hash, "cell": cell,
        }
        with EXEC_LOCK:
            (entry,) = execute_batch(
                [spec], {instance_hash: self.instances[instance_hash]}
            )
        if "error" in entry:
            return {
                "id": rid, "ok": False, "op": "cell",
                "error": entry["error"],
            }
        return {
            "id": rid, "ok": True, "op": "cell", "cached": False,
            "instance_hash": instance_hash,
            "row": entry["result"]["row"],
        }


class TestExecutorEquivalence:
    def test_remote_rows_byte_identical_to_inline_and_pool(self, tmp_path):
        cells = small_cells()
        inline = run_campaign(cells)
        pool = run_campaign(cells, jobs=2)
        with FakeBackend(tmp_path / "a.sock") as a, \
                FakeBackend(tmp_path / "b.sock") as b:
            remote = run_campaign(
                cells, backends=[a.spec, b.spec],
                remote_options=RemoteOptions(**FAST),
            )
        assert row_bytes(inline) == row_bytes(pool) == row_bytes(remote)
        assert remote.remote_stats is not None
        assert remote.remote_stats["executor"] == "remote"
        assert remote.remote_stats["completed"] == len(cells)
        assert inline.remote_stats is None

    def test_telemetry_rows_identical(self, tmp_path):
        cells = small_cells(2, telemetry=True)
        inline = run_campaign(cells)
        with FakeBackend(tmp_path / "a.sock") as a:
            remote = run_campaign(
                cells, backends=[a.spec],
                remote_options=RemoteOptions(**FAST),
            )
        assert row_bytes(inline) == row_bytes(remote)
        assert "telemetry" in remote.rows[0]


class TestDispatch:
    def test_work_spreads_and_each_graph_ships_once(self, tmp_path):
        cells = small_cells(8)  # one shared graph across all cells
        with FakeBackend(tmp_path / "a.sock") as a, \
                FakeBackend(tmp_path / "b.sock") as b:
            result = run_campaign(
                cells, backends=[a.spec, b.spec],
                remote_options=RemoteOptions(window=2, **FAST),
            )
            assert a.cells >= 1 and b.cells >= 1
            assert a.cells + b.cells == len(cells)
            assert a.registers == 1 and b.registers == 1
        assert len(result.rows) == len(cells)

    def test_server_reported_cell_error_is_not_retried(self, tmp_path):
        cells = [*small_cells(2), CampaignCell(label="doomed", **SMALL)]
        with FakeBackend(
            tmp_path / "a.sock", fail_labels=("doomed",)
        ) as a:
            result = run_campaign(
                cells, backends=[a.spec], strict=False,
                remote_options=RemoteOptions(**FAST),
            )
            # Deterministic failure: exactly one attempt, no requeue.
            assert a.cells == len(cells)
        (failure,) = result.failures
        assert failure["label"] == "doomed"
        assert "injected failure" in failure["error"]
        assert result.rows[2]["status"] == "error"

    def test_executor_validation(self):
        cells = small_cells(1)
        with pytest.raises(ReproError, match="requires backends"):
            run_campaign(cells, executor="remote")
        with pytest.raises(ReproError, match="unknown executor"):
            run_campaign(cells, executor="bogus")
        with pytest.raises(ReproError, match="backends"):
            run_campaign(cells, executor="inline", backends=["unix:/nope"])
        with pytest.raises(ReproError, match="cell_runner"):
            run_campaign(
                cells, backends=["unix:/nope"],
                cell_runner=lambda c: {"label": c.label},
            )


class TestJournalCorruption:
    """load_journal tolerates a torn final line — nothing else."""

    def _journal(self, tmp_path, lines: list[str]) -> Path:
        journal = tmp_path / "run.jsonl"
        journal.write_text("".join(line + "\n" for line in lines))
        return journal

    def test_midfile_garbage_raises(self, tmp_path):
        journal = self._journal(tmp_path, [
            '{"index": 0, "label": "a", "row": {}}',
            '{"index": 1, "label": "b", "ro',
            '{"index": 2, "label": "c", "row": {}}',
        ])
        with pytest.raises(ReproError, match="line 2 is not valid JSON"):
            load_journal(journal)

    def test_midfile_wrong_schema_raises(self, tmp_path):
        journal = self._journal(tmp_path, [
            '{"index": 0, "label": "a", "row": {}}',
            '{"note": "not a journal record"}',
            '{"index": 2, "label": "c", "row": {}}',
        ])
        with pytest.raises(ReproError, match="corrupt: line 2"):
            load_journal(journal)

    def test_trailing_torn_line_still_tolerated(self, tmp_path):
        journal = self._journal(tmp_path, [
            '{"index": 0, "label": "a", "row": {}}',
            '{"index": 1, "label": "b", "ro',
        ])
        assert sorted(load_journal(journal)) == [0]


class TestCheckpointResume:
    def test_remote_resume_is_byte_identical(self, tmp_path):
        cells = small_cells()
        reference = run_campaign(cells)
        journal = tmp_path / "run.jsonl"
        with FakeBackend(tmp_path / "a.sock") as a:
            run_campaign(
                cells[:3], backends=[a.spec], checkpoint=journal,
                remote_options=RemoteOptions(**FAST),
            )
        assert sorted(load_journal(journal)) == [0, 1, 2]
        with FakeBackend(tmp_path / "b.sock") as b:
            resumed = run_campaign(
                cells, backends=[b.spec], resume=journal,
                remote_options=RemoteOptions(**FAST),
            )
            # Only the three unjournaled cells crossed the wire.
            assert b.cells == 3
        assert resumed.resumed == 3
        assert row_bytes(resumed) == row_bytes(reference)


class TestBackendLoss:
    def test_killed_backend_cells_requeued_and_complete(self, tmp_path):
        cells = small_cells(8)
        reference = run_campaign(cells)
        with FakeBackend(tmp_path / "a.sock") as a, \
                FakeBackend(tmp_path / "b.sock", die_after=1) as b:
            # retries=3: a cell may be charged more than one loss while
            # the dying backend is still being convicted.
            remote = run_campaign(
                cells, backends=[a.spec, b.spec], retries=3,
                remote_options=RemoteOptions(window=2, **FAST),
            )
        assert row_bytes(remote) == row_bytes(reference)
        stats = remote.remote_stats
        assert stats["backend_deaths"] >= 1
        assert stats["requeued"] >= 1
        assert stats["backends"][f"unix:{tmp_path}/b.sock"]["alive"] is False

    def test_no_live_backend_strands_cells_as_crashes(self, tmp_path):
        cells = small_cells(3)
        result = run_campaign(
            cells, backends=[f"unix:{tmp_path}/ghost.sock"],
            strict=False, retries=0,
            remote_options=RemoteOptions(
                probe_strikes=1, no_backend_grace_s=0.3, **FAST
            ),
        )
        assert len(result.failures) == len(cells)
        assert all(f["kind"] == "crash" for f in result.failures)
        assert all(row["status"] == "error" for row in result.rows)

    def test_strict_kill_raises(self, tmp_path):
        cells = small_cells(2)
        with pytest.raises(ReproError, match="stranded|lost"):
            run_campaign(
                cells, backends=[f"unix:{tmp_path}/ghost.sock"],
                retries=0,
                remote_options=RemoteOptions(
                    probe_strikes=1, no_backend_grace_s=0.3, **FAST
                ),
            )


class TestStragglerHedging:
    def test_straggler_hedged_first_result_wins(self, tmp_path):
        # "slow" is queued first; with both backends idle the picker
        # tie-breaks on label, so it deterministically lands on a —
        # which stalls it for 30s.  The fast cells build the latency
        # sample, the hedger re-dispatches "slow" to b, and b's row
        # wins; rows stay byte-identical to an inline run.
        cells = [CampaignCell(label="slow", **SMALL), *small_cells(5)]
        reference = run_campaign(cells)
        with FakeBackend(tmp_path / "a.sock", delay={"slow": 30.0}) as a, \
                FakeBackend(tmp_path / "b.sock") as b:
            started = time.monotonic()
            remote = run_campaign(
                cells, backends=[a.spec, b.spec],
                remote_options=RemoteOptions(
                    straggler_quantile=0.5, straggler_factor=1.5,
                    straggler_min_s=0.2, straggler_min_samples=3, **FAST
                ),
            )
            elapsed = time.monotonic() - started
        assert row_bytes(remote) == row_bytes(reference)
        assert remote.remote_stats["redispatched"] >= 1
        assert elapsed < 20, "first-result-wins should beat the straggler"


@pytest.mark.slow
class TestRealFleet:
    """One end-to-end pass through real ``repro serve`` subprocesses."""

    def _start(self, sock: str) -> subprocess.Popen:
        root = Path(__file__).resolve().parent.parent
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--unix", sock,
             "-j", "1", "--idle-timeout", "120"],
            env={**os.environ, "PYTHONPATH": str(root / "src")},
            cwd=root, stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if os.path.exists(sock):
                try:
                    probe = socket.socket(socket.AF_UNIX)
                    probe.connect(sock)
                    probe.close()
                    return proc
                except OSError:
                    pass
            time.sleep(0.1)
        proc.kill()
        raise AssertionError(f"serve on {sock} did not come up")

    def test_two_shard_fleet_rows_byte_identical(self, tmp_path):
        cells = small_cells(4)
        reference = run_campaign(cells)
        socks = [str(tmp_path / "s0.sock"), str(tmp_path / "s1.sock")]
        procs = [self._start(sock) for sock in socks]
        try:
            remote = run_campaign(
                cells, backends=[f"unix:{sock}" for sock in socks],
                remote_options=RemoteOptions(**FAST),
            )
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)
        assert row_bytes(remote) == row_bytes(reference)
        assert remote.remote_stats["completed"] == len(cells)
