"""Tests for the pre-shattering T-node placement (Section 4)."""

from __future__ import annotations

import random

import pytest

from repro.core import classify_cliques, place_t_nodes
from repro.errors import InvariantViolation
from repro.verify import check_lemma15


@pytest.fixture(scope="module")
def classification(hard_instance, hard_acd):
    return classify_cliques(hard_instance.network, hard_acd)


class TestPlacement:
    def test_triads_are_valid(self, hard_instance, classification):
        result = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(0)
        )
        check_lemma15(hard_instance.network, classification, result.triads)

    def test_pairs_pairwise_non_adjacent(self, hard_instance, classification):
        net = hard_instance.network
        result = place_t_nodes(net, classification, rng=random.Random(1))
        pair_vertices = [v for t in result.triads for v in t.pair]
        for i, a in enumerate(pair_vertices):
            for b in pair_vertices[i + 1:]:
                assert b not in net.neighbor_set(a), (
                    "color-0 pairs must be mutually non-adjacent"
                )

    def test_good_bad_partition(self, classification, hard_instance):
        result = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(2)
        )
        assert sorted(result.good + result.bad) == sorted(classification.hard)

    def test_components_cover_bad(self, classification, hard_instance):
        result = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(3)
        )
        covered = sorted(index for comp in result.components for index in comp)
        assert covered == sorted(result.bad)

    def test_more_iterations_no_fewer_triads(self, classification, hard_instance):
        one = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(4),
            max_iterations=1, target_bad_fraction=0.0,
        )
        many = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(4),
            max_iterations=6, target_bad_fraction=0.0,
        )
        assert len(many.triads) >= len(one.triads)

    def test_full_activation(self, classification, hard_instance):
        result = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(5),
            activation_probability=1.0,
        )
        assert result.stats["iterations"] >= 1
        check_lemma15(hard_instance.network, classification, result.triads)

    def test_invalid_probability_rejected(self, classification, hard_instance):
        with pytest.raises(InvariantViolation):
            place_t_nodes(
                hard_instance.network, classification,
                rng=random.Random(0), activation_probability=0.0,
            )

    def test_stats_shape(self, classification, hard_instance):
        result = place_t_nodes(
            hard_instance.network, classification, rng=random.Random(6)
        )
        stats = result.stats
        assert stats["good"] + stats["bad"] == stats["hard_cliques"]
        assert stats["component_sizes"] == sorted(
            (len(c) for c in result.components), reverse=True
        )
