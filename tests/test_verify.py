"""Tests for the verification package."""

from __future__ import annotations

import pytest

from repro.errors import InvalidColoringError, InvariantViolation
from repro.local import Network
from repro.verify import (
    check_lemma15,
    check_oriented_matching,
    coloring_violations,
    is_proper_coloring,
    verify_coloring,
)


def path_network(n: int) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestColoringChecks:
    def test_proper_passes(self):
        net = path_network(4)
        verify_coloring(net, [0, 1, 0, 1], 2)

    def test_monochromatic_edge(self):
        net = path_network(3)
        with pytest.raises(InvalidColoringError, match="monochromatic"):
            verify_coloring(net, [0, 0, 1], 2)

    def test_uncolored_vertex(self):
        net = path_network(2)
        with pytest.raises(InvalidColoringError, match="uncolored"):
            verify_coloring(net, [0, None], 2)

    def test_out_of_range_color(self):
        net = path_network(2)
        with pytest.raises(InvalidColoringError, match="outside range"):
            verify_coloring(net, [0, 5], 2)

    def test_violations_listed(self):
        net = path_network(3)
        problems = coloring_violations(net, [0, 0, None], 2)
        assert len(problems) == 2

    def test_is_proper_boolean(self):
        net = path_network(3)
        assert is_proper_coloring(net, [0, 1, 0], 2)
        assert not is_proper_coloring(net, [0, 0, 0], 2)

    def test_error_carries_violations(self):
        net = path_network(3)
        with pytest.raises(InvalidColoringError) as excinfo:
            verify_coloring(net, [0, 0, 0], 2)
        assert len(excinfo.value.violations) == 2


class TestMatchingCheck:
    def test_valid(self):
        net = path_network(4)
        check_oriented_matching(net, [(0, 1), (2, 3)])

    def test_shared_vertex_rejected(self):
        net = path_network(3)
        with pytest.raises(InvariantViolation):
            check_oriented_matching(net, [(0, 1), (1, 2)])

    def test_non_edge_rejected(self):
        net = path_network(4)
        with pytest.raises(InvariantViolation, match="not an edge"):
            check_oriented_matching(net, [(0, 3)])


class TestLemma15Check:
    def test_adjacent_pair_rejected(self, hard_instance, hard_acd):
        from repro.core import SlackTriad, classify_cliques

        cls = classify_cliques(hard_instance.network, hard_acd)
        members = hard_acd.cliques[0]
        fake = SlackTriad(clique=0, slack=members[0],
                          pair=(members[1], members[2]))
        with pytest.raises(InvariantViolation, match="adjacent"):
            check_lemma15(hard_instance.network, cls, [fake])
