"""Chaos suite for the campaign runner: crashes, timeouts, resume.

The workers here misbehave on purpose — they ``os._exit`` mid-cell,
hang past their timeout, or raise arbitrary exceptions — via the
``cell_runner`` injection point of :func:`run_campaign`.  All runners
are module-level so they pickle into pool workers.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.runner import (
    CampaignCell,
    CampaignInterrupted,
    CellTimeout,
    load_journal,
    run_campaign,
)

#: Small-but-real cells for the byte-identity test (exercise run_cell).
SMALL = dict(workload="hard", num_cliques=16, delta=8, epsilon=0.25)


def cell(label: str, seed: int = 0, **extra) -> CampaignCell:
    return CampaignCell(label=label, seed=seed, **extra)


def ok_runner(c: CampaignCell) -> dict:
    return {"label": c.label, "seed": c.seed, "rounds": 1, "messages": 2}


def failing_runner(c: CampaignCell) -> dict:
    if c.label.startswith("bad"):
        raise KeyError("boom")
    return ok_runner(c)


def crashy_runner(c: CampaignCell) -> dict:
    if c.label.startswith("die"):
        os._exit(13)  # kills the worker process, not just the cell
    return ok_runner(c)


def flaky_runner(c: CampaignCell) -> dict:
    """Crashes the worker on first execution, succeeds on retry."""
    if c.label.startswith("flaky"):
        flag = Path(c.option_dict()["flag"])
        if not flag.exists():
            flag.write_text("crashed once")
            os._exit(13)
    return ok_runner(c)


def sleepy_runner(c: CampaignCell) -> dict:
    if c.label.startswith("hang"):
        time.sleep(120)
    return ok_runner(c)


def touch_runner(c: CampaignCell) -> dict:
    """Leaves a footprint file so tests can count real executions."""
    Path(c.option_dict()["dir"], c.label).write_text("ran")
    return ok_runner(c)


class TestUnifiedErrorHandling:
    """Satellite regression: the inline path must treat arbitrary cell
    exceptions exactly like the pool path does (recorded failure under
    strict=False, raised under strict=True) — not just ReproError."""

    def test_inline_records_non_repro_error(self):
        cells = [cell("bad"), cell("ok", 1)]
        result = run_campaign(cells, strict=False, cell_runner=failing_runner)
        assert result.failures[0]["label"] == "bad"
        assert result.failures[0]["kind"] == "error"
        assert result.rows[0]["status"] == "error"
        assert result.rows[1]["rounds"] == 1

    def test_inline_strict_raises_original_error(self):
        with pytest.raises(KeyError):
            run_campaign([cell("bad")], cell_runner=failing_runner)

    def test_inline_and_pool_record_identical_failures(self):
        cells = [cell("bad"), cell("ok", 1)]
        inline = run_campaign(cells, strict=False, cell_runner=failing_runner)
        pooled = run_campaign(
            cells, strict=False, jobs=2, cell_runner=failing_runner
        )
        assert inline.rows == pooled.rows
        assert inline.failures == pooled.failures

    def test_malformed_option_is_recorded_not_fatal(self):
        """The historical trigger: a bogus option keyword raises
        TypeError inside run_cell, which the inline path used to let
        escape strict=False."""
        cells = [
            cell("bogus", options=(("bogus_kw", 1),), **SMALL),
            cell("ok", 1, **SMALL),
        ]
        result = run_campaign(cells, strict=False)
        assert result.rows[0]["status"] == "error"
        assert "bogus_kw" in result.rows[0]["error"]
        assert result.rows[1]["rounds"] > 0


class TestWorkerCrash:
    def test_crash_is_isolated_and_recorded(self):
        """The dying cell burns its retries; innocent cells sharing the
        pool survive via the serial re-run after a crash."""
        cells = [cell("die"), cell("ok1", 1), cell("ok2", 2)]
        result = run_campaign(
            cells, jobs=2, strict=False, retries=1, backoff=0.0,
            cell_runner=crashy_runner,
        )
        crash = next(f for f in result.failures if f["label"] == "die")
        assert crash["kind"] == "crash"
        assert result.rows[0]["status"] == "error"
        assert result.rows[1]["rounds"] == 1
        assert result.rows[2]["rounds"] == 1

    def test_strict_crash_raises_after_retries(self):
        with pytest.raises(BrokenProcessPool):
            run_campaign(
                [cell("die")], jobs=2, retries=0, backoff=0.0,
                cell_runner=crashy_runner,
            )

    def test_transient_crash_retried_to_success(self, tmp_path):
        flag = tmp_path / "crashed-once"
        cells = [
            cell("flaky", options=(("flag", str(flag)),)),
            cell("ok", 1),
        ]
        result = run_campaign(
            cells, jobs=2, retries=1, backoff=0.0, cell_runner=flaky_runner
        )
        assert not result.failures
        assert [row["rounds"] for row in result.rows] == [1, 1]
        assert flag.exists()  # the first attempt really did crash


class TestTimeout:
    def test_hung_cell_times_out_others_complete(self):
        cells = [cell("hang"), cell("ok1", 1), cell("ok2", 2)]
        result = run_campaign(
            cells, jobs=2, timeout=1.0, strict=False, backoff=0.0,
            cell_runner=sleepy_runner,
        )
        failure = next(f for f in result.failures if f["label"] == "hang")
        assert failure["kind"] == "timeout"
        assert "timeout" in result.rows[0]["error"]
        assert result.rows[1]["rounds"] == 1
        assert result.rows[2]["rounds"] == 1

    def test_timeout_forces_pool_even_inline(self):
        """jobs=1 with a timeout must not run inline — an in-process
        cell cannot be killed."""
        result = run_campaign(
            [cell("hang")], jobs=1, timeout=0.5, strict=False,
            cell_runner=sleepy_runner,
        )
        assert result.failures[0]["kind"] == "timeout"

    def test_strict_timeout_raises_cell_timeout(self):
        with pytest.raises(CellTimeout):
            run_campaign(
                [cell("hang")], jobs=2, timeout=0.5,
                cell_runner=sleepy_runner,
            )


class TestCheckpointResume:
    def test_journal_written_per_cell(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_campaign(
            [cell("a"), cell("b", 1)], checkpoint=journal,
            cell_runner=ok_runner,
        )
        records = load_journal(journal)
        assert sorted(records) == [0, 1]
        assert records[0]["label"] == "a"
        assert records[0]["row"]["rounds"] == 1

    def test_resume_skips_journaled_cells(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        first_dir, second_dir = tmp_path / "first", tmp_path / "second"
        first_dir.mkdir(), second_dir.mkdir()

        def cells(directory: Path) -> list[CampaignCell]:
            return [
                cell("a", options=(("dir", str(directory)),)),
                cell("b", 1, options=(("dir", str(directory)),)),
            ]

        full = run_campaign(
            cells(first_dir), checkpoint=journal, cell_runner=touch_runner
        )
        assert {p.name for p in first_dir.iterdir()} == {"a", "b"}
        resumed = run_campaign(
            cells(second_dir), resume=journal, cell_runner=touch_runner
        )
        assert resumed.resumed == 2
        assert resumed.rows == full.rows
        assert not list(second_dir.iterdir())  # nothing re-ran

    def test_interrupt_carries_partial_and_resumes(self, tmp_path):
        """Simulated Ctrl-C after the first cell: the journal already
        holds that cell, the exception carries the partial result, and
        resuming completes the campaign."""
        journal = tmp_path / "run.jsonl"
        cells = [cell("a"), cell("b", 1), cell("c", 2)]

        def interrupt(done: int, total: int, label: str) -> None:
            raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(
                cells, checkpoint=journal, progress=interrupt,
                cell_runner=ok_runner,
            )
        partial = excinfo.value.partial
        assert len(partial.rows) == 1
        assert str(journal) in str(excinfo.value)

        resumed = run_campaign(cells, resume=journal, cell_runner=ok_runner)
        assert resumed.resumed == 1
        full = run_campaign(cells, cell_runner=ok_runner)
        assert resumed.rows == full.rows

    def test_resume_artifact_is_byte_identical(self, tmp_path):
        """The headline guarantee: a campaign killed part-way and
        resumed writes the same bytes as an uninterrupted run.  Uses
        the real run_cell so real rows cross the journal."""
        cells = [cell(f"seed={s}", s, **SMALL) for s in (0, 1, 2)]
        full = run_campaign(cells)
        full_path = full.write(tmp_path / "full.json")

        journal = tmp_path / "run.jsonl"
        run_campaign(cells[:1], checkpoint=journal)  # "killed" after cell 0
        resumed = run_campaign(cells, resume=journal)
        assert resumed.resumed == 1
        resumed_path = resumed.write(tmp_path / "resumed.json")
        assert full_path.read_bytes() == resumed_path.read_bytes()

    def test_truncated_final_line_tolerated(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_campaign([cell("a")], checkpoint=journal, cell_runner=ok_runner)
        with open(journal, "a") as handle:
            handle.write('{"index": 1, "label": "b", "ro')  # hard kill
        records = load_journal(journal)
        assert sorted(records) == [0]

    def test_resume_rejects_mismatched_journal(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_campaign([cell("a")], checkpoint=journal, cell_runner=ok_runner)
        with pytest.raises(ReproError, match="does not match"):
            run_campaign(
                [cell("renamed")], resume=journal, cell_runner=ok_runner
            )

    def test_resume_rejects_journal_overflow(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_campaign(
            [cell("a"), cell("b", 1)], checkpoint=journal,
            cell_runner=ok_runner,
        )
        with pytest.raises(ReproError, match="names cell"):
            run_campaign([cell("a")], resume=journal, cell_runner=ok_runner)

    def test_error_rows_are_not_journaled(self, tmp_path):
        """Failed cells stay out of the journal so a resume retries
        them — an error row is a placeholder, not a result."""
        journal = tmp_path / "run.jsonl"
        cells = [cell("bad"), cell("ok", 1)]
        run_campaign(
            cells, strict=False, checkpoint=journal,
            cell_runner=failing_runner,
        )
        assert sorted(load_journal(journal)) == [1]
        resumed = run_campaign(cells, resume=journal, cell_runner=ok_runner)
        assert resumed.resumed == 1
        assert resumed.rows[0]["rounds"] == 1  # the retry succeeded


class TestCliResume:
    def test_checkpoint_then_resume_writes_identical_output(self, tmp_path):
        from repro.cli import main

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "tiny",
            "grid": {"num_cliques": 16, "delta": 8, "epsilon": 0.25,
                     "seed": [0, 1]},
        }))
        journal = tmp_path / "run.jsonl"
        first_out = tmp_path / "first.json"
        assert main([
            "campaign", "--spec", str(spec), "-o", str(first_out),
            "--checkpoint", str(journal), "--quiet",
        ]) == 0
        assert sorted(load_journal(journal)) == [0, 1]

        second_out = tmp_path / "second.json"
        assert main([
            "campaign", "--spec", str(spec), "-o", str(second_out),
            "--resume", str(journal), "--quiet",
        ]) == 0
        assert first_out.read_bytes() == second_out.read_bytes()
