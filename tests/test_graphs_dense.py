"""Tests for the sparsity/density measures of Section 2."""

from __future__ import annotations

from repro.graphs import (
    friend_count,
    is_eta_dense,
    neighborhood_edge_count,
    non_edges_in_neighborhood,
    shared_neighbor_count,
)
from repro.local import Network


def complete_graph(n: int) -> Network:
    return Network.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


def star_graph(leaves: int) -> Network:
    return Network.from_edges(leaves + 1, [(0, i + 1) for i in range(leaves)])


class TestSharedNeighbors:
    def test_clique_members_share_everything(self):
        net = complete_graph(6)
        assert shared_neighbor_count(net, 0, 1) == 4

    def test_star_leaves_share_only_center(self):
        net = star_graph(5)
        assert shared_neighbor_count(net, 1, 2) == 1

    def test_disjoint_neighborhoods(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)])
        assert shared_neighbor_count(net, 0, 2) == 0


class TestDensity:
    def test_clique_vertices_are_dense(self):
        net = complete_graph(8)
        for v in range(8):
            assert is_eta_dense(net, v, eta=0.3)

    def test_star_center_is_sparse(self):
        net = star_graph(8)
        assert not is_eta_dense(net, 0, eta=0.3)
        assert friend_count(net, 0, eta=0.3) == 0

    def test_hard_instance_all_dense(self, hard_instance):
        net = hard_instance.network
        for v in range(0, net.n, 37):
            assert is_eta_dense(net, v, eta=0.3, delta=hard_instance.delta)


class TestNeighborhoodEdges:
    def test_clique_neighborhood_is_complete(self):
        net = complete_graph(5)
        assert neighborhood_edge_count(net, 0) == 6  # C(4, 2)
        assert non_edges_in_neighborhood(net, 0) == 0

    def test_star_neighborhood_is_empty(self):
        net = star_graph(5)
        assert neighborhood_edge_count(net, 0) == 0
        assert non_edges_in_neighborhood(net, 0) == 10  # C(5, 2)

    def test_claim1_sparse_vertex_bound(self, hard_instance):
        """Claim 1 direction check on a hard instance: eta-dense vertices
        have nearly complete neighborhoods."""
        net = hard_instance.network
        delta = hard_instance.delta
        eta = 0.3
        for v in range(0, net.n, 53):
            if is_eta_dense(net, v, eta, delta):
                non_edges = non_edges_in_neighborhood(net, v)
                # Dense vertices avoid the Claim 1 sparse-vertex bound.
                assert non_edges < (eta ** 2) * delta * (delta - 1) / 2 + delta
