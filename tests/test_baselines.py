"""Tests for the baseline algorithms."""

from __future__ import annotations

import pytest

from repro import verify_coloring
from repro.baselines import (
    dcc_layering_coloring,
    ghkm_randomized_coloring,
    greedy_brooks_coloring,
    greedy_delta_plus_one,
    lifted_clique_cycle,
)
from repro.acd import compute_acd
from repro.constants import AlgorithmParameters
from repro.core import is_loophole
from repro.errors import GraphStructureError
from repro.graphs import hard_clique_graph
from repro.local import Network
from tests.conftest import random_network

PARAMS = AlgorithmParameters(epsilon=0.25)


class TestBrooksOracle:
    def test_hard_instance(self, hard_instance):
        colors = greedy_brooks_coloring(hard_instance.network)
        verify_coloring(hard_instance.network, colors, hard_instance.delta)

    def test_mixed_instance(self, mixed_instance):
        colors = greedy_brooks_coloring(mixed_instance.network)
        verify_coloring(mixed_instance.network, colors, mixed_instance.delta)

    def test_random_sparse_graph(self):
        net = random_network(80, 200, seed=1)
        colors = greedy_brooks_coloring(net)
        verify_coloring(net, colors, net.max_degree)

    def test_even_cycle(self):
        net = Network.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        colors = greedy_brooks_coloring(net)
        verify_coloring(net, colors, 2)

    def test_odd_cycle_rejected(self):
        net = Network.from_edges(5, [(i, (i + 1) % 5) for i in range(5)])
        with pytest.raises(GraphStructureError, match="Brooks"):
            greedy_brooks_coloring(net)

    def test_complete_graph_rejected(self):
        net = Network.from_edges(
            5, [(i, j) for i in range(5) for j in range(i + 1, 5)]
        )
        with pytest.raises(GraphStructureError, match="Brooks"):
            greedy_brooks_coloring(net)

    def test_disconnected_components(self):
        # A 4-cycle plus a path: two components, both colorable.
        net = Network.from_edges(
            7, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6)]
        )
        colors = greedy_brooks_coloring(net)
        verify_coloring(net, colors, 2)

    def test_regular_component_with_root_triple(self):
        # Petersen graph: 3-regular, 3-chromatic, no K4, not a cycle.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        net = Network.from_edges(10, outer + inner + spokes)
        colors = greedy_brooks_coloring(net)
        verify_coloring(net, colors, 3)


class TestDccBaseline:
    def test_colors_hard_instance(self, hard_instance):
        result = dcc_layering_coloring(hard_instance.network, params=PARAMS)
        verify_coloring(hard_instance.network, result.colors, 16)
        assert result.stats["max_dcc_size"] >= 8

    def test_colors_mixed_instance(self, mixed_instance):
        result = dcc_layering_coloring(mixed_instance.network, params=PARAMS)
        verify_coloring(mixed_instance.network, result.colors, 16)

    def test_lifted_cycle_is_loophole(self, hard_instance, hard_acd):
        cycle = lifted_clique_cycle(hard_instance.network, hard_acd, 0)
        assert cycle is not None
        assert is_loophole(hard_instance.network, cycle, hard_instance.delta)
        # Lifted from a girth-4 clique graph: 8 vertices.
        assert len(cycle.vertices) >= 8

    def test_ledger_contains_dcc_detection(self, hard_instance):
        result = dcc_layering_coloring(hard_instance.network, params=PARAMS)
        assert any(
            entry.label.startswith("dcc/") for entry in result.ledger.entries
        )


class TestGhkmBaseline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_colors_hard_instance(self, hard_instance, seed):
        result = ghkm_randomized_coloring(
            hard_instance.network, params=PARAMS, seed=seed
        )
        verify_coloring(hard_instance.network, result.colors, 16)

    def test_component_path(self, hard_instance):
        exercised = False
        for seed in range(8):
            result = ghkm_randomized_coloring(
                hard_instance.network, params=PARAMS, seed=seed,
                activation_probability=0.02,
            )
            verify_coloring(hard_instance.network, result.colors, 16)
            if result.stats["bad_cliques"]:
                exercised = True
        assert exercised


class TestDeltaPlusOne:
    def test_deterministic(self, hard_instance):
        result = greedy_delta_plus_one(hard_instance.network)
        verify_coloring(hard_instance.network, result.colors, 17)

    def test_randomized(self, hard_instance):
        result = greedy_delta_plus_one(
            hard_instance.network, deterministic=False, seed=1
        )
        verify_coloring(hard_instance.network, result.colors, 17)
        assert result.num_colors == 17

    def test_works_on_sparse_graphs_too(self):
        net = random_network(60, 150, seed=2)
        result = greedy_delta_plus_one(net, deterministic=False, seed=3)
        verify_coloring(net, result.colors, net.max_degree + 1)
