"""Failure injection: tampered pipeline outputs must be caught.

The pipelines verify their lemmas at runtime; these tests corrupt
intermediate objects and assert the matching checker fires, i.e. no
tampering can silently produce an improper coloring.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.constants import AlgorithmParameters
from repro.core import (
    SlackTriad,
    classify_cliques,
    color_slack_pairs,
    compute_balanced_matching,
    form_slack_triads,
    sparsify_matching,
)
from repro.core.matching_phase import BalancedMatching
from repro.errors import InvalidColoringError, InvariantViolation
from repro.local import RoundLedger
from repro.verify import (
    check_lemma12,
    check_lemma13,
    check_lemma15,
    verify_coloring,
)

PARAMS = AlgorithmParameters(epsilon=0.25)


@pytest.fixture(scope="module")
def pipeline(hard_instance, hard_acd):
    network = hard_instance.network
    classification = classify_cliques(network, hard_acd)
    balanced = compute_balanced_matching(
        network, classification, params=PARAMS, ledger=RoundLedger()
    )
    sparsified = sparsify_matching(
        network, classification, balanced, params=PARAMS, ledger=RoundLedger()
    )
    triads, _ = form_slack_triads(
        network, classification, sparsified, params=PARAMS,
        ledger=RoundLedger(),
    )
    return network, classification, balanced, sparsified, triads


class TestMatchingTampering:
    def test_dropped_outgoing_edge_detected(self, pipeline):
        network, classification, balanced, _, _ = pipeline
        tampered = BalancedMatching(
            edges=balanced.edges[1:],
            f1=balanced.f1,
            type1=balanced.type1,
            type2=balanced.type2,
            stats=balanced.stats,
        )
        with pytest.raises(InvariantViolation, match="Lemma 12"):
            check_lemma12(network, classification, tampered)

    def test_duplicated_endpoint_detected(self, pipeline):
        network, classification, balanced, _, _ = pipeline
        tail, head = balanced.edges[0]
        other = next(
            u for u in network.adjacency[tail] if u != head
        )
        tampered = BalancedMatching(
            edges=balanced.edges + [(tail, other)],
            f1=balanced.f1,
            type1=balanced.type1,
            type2=balanced.type2,
            stats=balanced.stats,
        )
        with pytest.raises(InvariantViolation, match="matching"):
            check_lemma12(network, classification, tampered)

    def test_wrong_outgoing_count_in_f3_detected(self, pipeline):
        network, classification, _, sparsified, _ = pipeline
        tampered = dataclasses.replace(
            sparsified, edges=sparsified.edges[:-1]
        )
        with pytest.raises(InvariantViolation, match="Lemma 13"):
            check_lemma13(
                network, classification, tampered, params=PARAMS,
                strict_incoming=False,
            )


class TestTriadTampering:
    def test_overlapping_triads_detected(self, pipeline):
        network, classification, _, _, triads = pipeline
        with pytest.raises(InvariantViolation, match="ii"):
            check_lemma15(network, classification, [triads[0], triads[0]])

    def test_misplaced_slack_vertex_detected(self, pipeline):
        network, classification, _, _, triads = pipeline
        moved = SlackTriad(
            clique=triads[1].clique, slack=triads[0].slack,
            pair=triads[0].pair,
        )
        with pytest.raises(InvariantViolation, match="not in clique"):
            check_lemma15(network, classification, [moved])

    def test_pair_not_neighboring_slack_detected(self, pipeline):
        network, classification, _, _, triads = pipeline
        far = next(
            v
            for v in range(network.n)
            if v not in network.neighbor_set(triads[0].slack)
            and v != triads[0].slack
        )
        bad = SlackTriad(
            clique=triads[0].clique, slack=triads[0].slack,
            pair=(far, triads[0].pair[1]),
        )
        with pytest.raises(InvariantViolation, match="neighbor"):
            check_lemma15(network, classification, [bad])


class TestPairColoringTampering:
    def test_undersized_palette_detected(self, pipeline):
        network, _, _, _, triads = pipeline
        # One color for everyone cannot work once pairs conflict.
        with pytest.raises(InvariantViolation, match="Lemma 16"):
            color_slack_pairs(network, triads, [0], ledger=RoundLedger())


class TestColoringTampering:
    def test_flipped_color_detected(self, hard_instance):
        from repro.core import delta_color_deterministic

        result = delta_color_deterministic(
            hard_instance.network, params=PARAMS
        )
        colors = list(result.colors)
        v = 0
        u = hard_instance.network.adjacency[v][0]
        colors[v] = colors[u]
        with pytest.raises(InvalidColoringError):
            verify_coloring(hard_instance.network, colors, 16)

    def test_erased_color_detected(self, hard_instance):
        from repro.core import delta_color_deterministic

        result = delta_color_deterministic(
            hard_instance.network, params=PARAMS
        )
        colors: list = list(result.colors)
        colors[5] = None
        with pytest.raises(InvalidColoringError, match="uncolored"):
            verify_coloring(hard_instance.network, colors, 16)
