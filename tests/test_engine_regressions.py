"""Regression tests for the engine-overhaul bugfixes.

Each class pins one of the fixes that shipped with the hot-path rewrite:
the subnetwork send-validation bypass (the headline bug), strict CONGEST
payload sizing, the tracer quiet-fraction clamp, and the cached topology
accessors.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.local import (
    DistributedAlgorithm,
    Network,
    Tracer,
    VirtualNetwork,
    message_words,
)


def path_network(n: int = 6) -> Network:
    return Network.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class SendToStranger(DistributedAlgorithm):
    """Node 0 sends to a vertex that is not its neighbor."""

    name = "send-to-stranger"

    def __init__(self, target: int):
        self.target = target

    def on_start(self, node, api):
        if node.index == 0:
            api.send(self.target, "hello")
        api.halt(None)

    def on_round(self, node, api, inbox):
        api.halt(None)


class TestSubnetworkSendValidation:
    """The headline bugfix: ``subnetwork`` used to construct the induced
    network with ``validate=False``, which silently disabled *send*
    validation as well as structure validation — an algorithm running on
    a subnetwork could message non-neighbors without an error."""

    def test_subnetwork_rejects_non_neighbor_send(self):
        # Induced sub-path 0-1-2 of a 6-path: node 0 and node 2 are not
        # adjacent, so the send must be rejected.
        sub, _ = path_network().subnetwork([0, 1, 2])
        with pytest.raises(SimulationError, match="non-neighbor"):
            sub.run(SendToStranger(2))

    def test_nested_subnetwork_still_validates(self):
        outer, _ = path_network(8).subnetwork([0, 1, 2, 3, 4])
        sub, _ = outer.subnetwork([0, 1, 2])
        with pytest.raises(SimulationError, match="non-neighbor"):
            sub.run(SendToStranger(2))

    def test_virtual_network_validates_sends(self):
        virtual = VirtualNetwork(
            path_network(), [[0, 1], [2, 3], [4, 5]]
        )
        # Virtual nodes 0 and 2 share no base edge.
        with pytest.raises(SimulationError, match="non-neighbor"):
            virtual.run(SendToStranger(2))

    def test_legacy_validate_flag_still_disables_both(self):
        network = Network(
            path_network().adjacency, validate=False
        )
        sub, _ = network.subnetwork([0, 1, 2])
        result = sub.run(SendToStranger(2))  # no error: opted out
        assert result.rounds >= 0

    def test_subnetwork_skips_structure_revalidation(self):
        # Structure was validated on the parent; the induced adjacency is
        # symmetric/loop-free by construction, so only sends are checked.
        sub, mapping = path_network().subnetwork([5, 3, 4])
        assert mapping == [3, 4, 5]
        assert sub._validate_sends  # sends stay validated on the induced net


class TestStrictMessageWords:
    def test_unsupported_payload_type_raises(self):
        with pytest.raises(SimulationError, match="cannot size a payload"):
            message_words(object())

    def test_unsupported_nested_payload_raises(self):
        with pytest.raises(SimulationError, match="cannot size a payload"):
            message_words({"ok": [1, 2, object()]})

    def test_send_of_unsized_payload_fails_under_accounting(self):
        class Custom:
            pass

        class SendCustom(DistributedAlgorithm):
            name = "send-custom"

            def on_start(self, node, api):
                api.broadcast(Custom())
                api.halt(None)

            def on_round(self, node, api, inbox):
                api.halt(None)

        with pytest.raises(SimulationError, match="cannot size a payload"):
            path_network().run(SendCustom(), measure_bandwidth=True)

    def test_supported_payloads_still_sized(self):
        assert message_words(None) == 1
        assert message_words(True) == 1
        assert message_words(3.5) == 1
        assert message_words("12345678") == 1
        assert message_words(b"123456789") == 2
        assert message_words({"k": (1, 2)}) == 3


class TestQuietFractionClamp:
    def test_negative_fraction_clamped_to_zero(self):
        tracer = Tracer()
        # More executed rounds than the final round count (e.g. a tracer
        # reused across runs) used to yield a negative fraction.
        for rnd in range(12):
            tracer.record(rnd, scheduled=1, delivered=0, halted_total=0)
        assert tracer.quiet_fraction(10) == 0.0

    def test_fraction_capped_at_one(self):
        assert Tracer().quiet_fraction(10) == 1.0

    def test_zero_rounds(self):
        assert Tracer().quiet_fraction(0) == 0.0

    def test_normal_fraction_unchanged(self):
        tracer = Tracer()
        for rnd in range(3):
            tracer.record(rnd, scheduled=2, delivered=1, halted_total=0)
        assert tracer.quiet_fraction(10) == pytest.approx(0.7)


class TestCachedAccessors:
    def test_edges_returns_fresh_list(self):
        network = path_network()
        edges = network.edges()
        edges.append((99, 100))  # mutating the copy must not poison the cache
        assert network.edges() == [(i, i + 1) for i in range(5)]

    def test_max_degree_cached_value_correct(self):
        network = path_network()
        assert network.max_degree == 2
        assert network.max_degree == 2  # second read hits the cache

    def test_subnetwork_inherits_nothing_stale(self):
        network = path_network()
        network.edges()  # populate parent caches
        sub, _ = network.subnetwork([0, 1, 2])
        assert sub.edges() == [(0, 1), (1, 2)]
        assert sub.max_degree == 2

    def test_api_send_rejects_negative_index(self):
        class SendNegative(DistributedAlgorithm):
            name = "send-negative"

            def on_start(self, node, api):
                api.send(-1, "x")

            def on_round(self, node, api, inbox):
                api.halt(None)

        with pytest.raises(SimulationError):
            path_network().run(SendNegative())
