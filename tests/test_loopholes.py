"""Tests for loopholes (Definition 6, Lemma 7)."""

from __future__ import annotations

import pytest

from repro.core import Loophole, color_loophole, find_small_loophole, is_loophole
from repro.errors import InvariantViolation
from repro.local import Network


def cycle_network(n: int) -> Network:
    return Network.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Network:
    return Network.from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


class TestLoopholeObject:
    def test_low_degree_must_be_single_vertex(self):
        with pytest.raises(InvariantViolation):
            Loophole((0, 1), "low-degree")

    def test_even_cycle_must_be_even(self):
        with pytest.raises(InvariantViolation):
            Loophole((0, 1, 2, 3, 4), "even-cycle")

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvariantViolation):
            Loophole((0,), "mystery")

    def test_boundary_kind(self):
        lh = Loophole((3,), "boundary")
        assert lh.kind == "boundary"


class TestIsLoophole:
    def test_low_degree(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        # Delta = 2; vertex 0 has degree 1 < 2.
        assert is_loophole(net, Loophole((0,), "low-degree"), 2)
        assert not is_loophole(net, Loophole((1,), "low-degree"), 2)

    def test_non_clique_four_cycle(self):
        net = cycle_network(4)
        assert is_loophole(net, Loophole((0, 1, 2, 3), "even-cycle"), 2)

    def test_clique_cycle_is_not_loophole(self):
        net = complete_graph(4)
        assert not is_loophole(net, Loophole((0, 1, 2, 3), "even-cycle"), 3)

    def test_missing_edge_rejected(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])  # path, no cycle
        assert not is_loophole(net, Loophole((0, 1, 2, 3), "even-cycle"), 2)

    def test_boundary_relative_to_uncolored_set(self):
        net = Network.from_edges(2, [(0, 1)])
        lh = Loophole((0,), "boundary")
        assert is_loophole(net, lh, 1, uncolored_outside={1})
        assert not is_loophole(net, lh, 1, uncolored_outside=set())


class TestFindSmallLoophole:
    def test_low_degree_found_first(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        lh = find_small_loophole(net, 0, delta=2)
        assert lh.kind == "low-degree"

    def test_four_cycle_found(self):
        net = cycle_network(4)
        # Every vertex has degree 2 = Delta; the 4-cycle is the loophole.
        lh = find_small_loophole(net, 0, delta=2)
        assert lh is not None and lh.kind == "even-cycle"
        assert len(lh.vertices) == 4

    def test_six_cycle_found(self):
        net = cycle_network(6)
        lh = find_small_loophole(net, 0, delta=2, max_size=6)
        assert lh is not None and len(lh.vertices) == 6

    def test_six_cycle_missed_with_small_budget(self):
        net = cycle_network(6)
        assert find_small_loophole(net, 0, delta=2, max_size=4) is None

    def test_odd_cycle_has_none(self):
        net = cycle_network(5)
        assert find_small_loophole(net, 0, delta=2, max_size=6) is None

    def test_hard_instance_has_none(self, hard_instance):
        net = hard_instance.network
        for v in (0, 17, 100):
            assert find_small_loophole(net, v, delta=16) is None

    def test_mixed_instance_easy_vertex_found(self, mixed_instance):
        easy = mixed_instance.meta["easy_cliques"][0]
        v = mixed_instance.cliques[easy][0]  # one deleted-edge endpoint
        lh = find_small_loophole(mixed_instance.network, v, delta=16)
        assert lh is not None


class TestColorLoophole:
    def test_single_vertex(self):
        net = Network.from_edges(2, [(0, 1)])
        assignment = color_loophole(net, [0], {0: [5]})
        assert assignment == {0: 5}

    def test_even_cycle_with_two_lists(self):
        net = cycle_network(4)
        lists = {0: [0, 1], 1: [0, 1], 2: [0, 1], 3: [0, 1]}
        assignment = color_loophole(net, [0, 1, 2, 3], lists)
        for i in range(4):
            assert assignment[i] != assignment[(i + 1) % 4]

    def test_heterogeneous_lists(self):
        net = cycle_network(4)
        lists = {0: [0, 1], 1: [1, 2], 2: [2, 3], 3: [3, 0]}
        assignment = color_loophole(net, [0, 1, 2, 3], lists)
        for v in range(4):
            assert assignment[v] in lists[v]

    def test_k4_minus_edge(self):
        net = Network.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
        )  # diagonal 0-2; 1-3 missing
        lists = {0: [0, 1, 2], 1: [0, 1], 2: [0, 1, 2], 3: [0, 1]}
        assignment = color_loophole(net, [0, 1, 2, 3], lists)
        for u, v in net.edges():
            assert assignment[u] != assignment[v]

    def test_impossible_instance_raises(self):
        # Odd cycle with identical 2-lists is not list-colorable.
        net = cycle_network(3)
        lists = {0: [0, 1], 1: [0, 1], 2: [0, 1]}
        with pytest.raises(InvariantViolation, match="Lemma 7"):
            color_loophole(net, [0, 1, 2], lists)
