"""Tests for the hard/easy classification (Definitions 6/8, Lemma 9)."""

from __future__ import annotations

import pytest

from repro.acd import compute_acd
from repro.core import classify_cliques, classify_cliques_exact, is_loophole
from repro.graphs import hard_clique_graph, mixed_dense_graph
from repro.local import Network
from repro.verify import check_lemma9


class TestAllHard:
    def test_everything_hard(self, hard_instance, hard_acd):
        cls = classify_cliques(hard_instance.network, hard_acd)
        assert len(cls.hard) == 34
        assert not cls.easy

    def test_lemma9_holds(self, hard_instance, hard_acd):
        cls = classify_cliques(hard_instance.network, hard_acd)
        check_lemma9(hard_instance.network, cls)

    def test_hard_vertices_cover_everything(self, hard_instance, hard_acd):
        cls = classify_cliques(hard_instance.network, hard_acd)
        assert len(cls.hard_vertices()) == hard_instance.n


class TestEasyDetection:
    def test_h1_low_degree(self, mixed_instance, mixed_acd):
        cls = classify_cliques(mixed_instance.network, mixed_acd)
        planted = set(mixed_instance.meta["easy_cliques"])
        assert set(cls.easy) == planted
        assert set(cls.reasons.values()) == {"H1"}

    def test_witness_loopholes_are_real(self, mixed_instance, mixed_acd):
        cls = classify_cliques(mixed_instance.network, mixed_acd)
        for index, loophole in cls.loopholes.items():
            assert is_loophole(
                mixed_instance.network, loophole, mixed_instance.delta
            )
            members = set(mixed_instance.cliques[index])
            assert members & set(loophole.vertices)

    def test_h3_shared_outside_neighbor(self):
        """Wire one extra edge so an outside vertex sees two clique
        members -> H3 with a 4-cycle witness."""
        instance = hard_clique_graph(34, 16)
        net = instance.network
        # Add an edge from clique 1's vertex to a second vertex of
        # clique 0 (it already has one neighbor there via the matching).
        owner = instance.clique_of()
        partner = instance.clique_graph[0][0]
        u, w = next(
            (a, b) if owner[a] == 0 else (b, a)
            for a, b in net.edges()
            if {owner[a], owner[b]} == {0, partner}
        )
        second = next(
            v for v in instance.cliques[0]
            if v != u and w not in net.neighbor_set(v)
        )
        edges = net.edges() + [(second, w)]
        tampered = Network.from_edges(net.n, edges)
        acd = compute_acd(tampered, epsilon=0.25)
        cls = classify_cliques(tampered, acd)
        assert 0 in cls.easy
        reason = cls.reasons[0]
        assert reason in ("H1", "H3")  # degree bump may trip H1 first

    def test_h4_external_edge(self):
        """Connect the external neighbors of two members of one clique:
        the paper's Lemma 10 collision configuration."""
        instance = hard_clique_graph(34, 16)
        net = instance.network
        owner = instance.clique_of()
        externals = []
        for v in instance.cliques[0][:2]:
            w = next(u for u in net.adjacency[v] if owner[u] != 0)
            externals.append(w)
        x, y = externals
        if y in net.neighbor_set(x):
            pytest.skip("random instance already had the edge")
        edges = net.edges() + [(x, y)]
        tampered = Network.from_edges(net.n, edges)
        acd = compute_acd(tampered, epsilon=0.25)
        cls = classify_cliques(tampered, acd)
        assert 0 in cls.easy
        assert cls.reasons[0] in ("H1", "H4")


class TestPropagation:
    def test_shared_witness_propagates(self):
        """An H3 witness contains an outside vertex; its clique must be
        classified easy too so the loophole survives the hard phase."""
        instance = hard_clique_graph(34, 16)
        net = instance.network
        owner = instance.clique_of()
        partner = instance.clique_graph[0][0]
        u, w = next(
            (a, b) if owner[a] == 0 else (b, a)
            for a, b in net.edges()
            if {owner[a], owner[b]} == {0, partner}
        )
        second = next(
            v for v in instance.cliques[0]
            if v != u and w not in net.neighbor_set(v)
        )
        tampered = Network.from_edges(net.n, net.edges() + [(second, w)])
        acd = compute_acd(tampered, epsilon=0.25)
        cls = classify_cliques(tampered, acd)
        for index, loophole in cls.loopholes.items():
            for v in loophole.vertices:
                assert acd.clique_index[v] not in cls.hard_set


class TestExactCrossValidation:
    def test_structural_matches_exact_on_tiny_instances(self):
        for seed in (4, 9):
            instance = mixed_dense_graph(18, 8, easy_fraction=0.3, seed=seed)
            acd = compute_acd(instance.network, epsilon=0.3)
            structural = classify_cliques(instance.network, acd)
            exact = classify_cliques_exact(instance.network, acd)
            assert sorted(structural.hard) == sorted(exact.hard)

    def test_exact_on_all_hard(self):
        instance = hard_clique_graph(18, 8)
        acd = compute_acd(instance.network, epsilon=0.3)
        exact = classify_cliques_exact(instance.network, acd)
        assert len(exact.hard) == 18
