"""Tests for the H-partition and forest decomposition."""

from __future__ import annotations

import pytest

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import (
    acyclic_orientation,
    estimate_arboricity,
    forest_decomposition,
    h_partition,
    verify_forests,
)
from tests.conftest import random_network


def tree_network(n: int) -> Network:
    return Network.from_edges(n, [(i, (i - 1) // 2) for i in range(1, n)])


class TestHPartition:
    def test_tree_is_arboricity_one(self):
        net = tree_network(63)
        partition = h_partition(net, 1)
        assert partition.num_classes >= 1
        # Up-degree bound: every vertex has <= (2.5) neighbors in its
        # own or higher classes.
        for v in range(net.n):
            up = sum(
                1
                for u in net.adjacency[v]
                if partition.class_of[u] >= partition.class_of[v]
            )
            assert up <= 2.5

    def test_logarithmically_many_classes(self):
        net = random_network(300, 900, seed=1)
        partition = h_partition(net, 3)
        assert partition.num_classes <= partition.meta["max_phases"]

    def test_underestimated_arboricity_rejected(self):
        # A clique on 12 vertices has arboricity 6; bound 1 cannot work.
        net = Network.from_edges(
            12, [(i, j) for i in range(12) for j in range(i + 1, 12)]
        )
        with pytest.raises(SubroutineError, match="arboricity"):
            h_partition(net, 1)

    def test_bad_parameters(self):
        net = tree_network(7)
        with pytest.raises(SubroutineError):
            h_partition(net, 0)
        with pytest.raises(SubroutineError):
            h_partition(net, 1, epsilon=0)


class TestEstimate:
    def test_tree(self):
        assert estimate_arboricity(tree_network(63)) == 1

    def test_dense_instance(self, hard_instance):
        bound = estimate_arboricity(hard_instance.network)
        # Arboricity of a 16-clique blowup is ~8; doubling finds 8 or 16.
        assert bound in (8, 16)


class TestForests:
    def test_tree_single_forest(self):
        net = tree_network(31)
        forest_of, oriented, _ = forest_decomposition(net, 1)
        count = verify_forests(net, forest_of, oriented)
        assert count <= 2  # (2 + eps) * 1 rounded down

    def test_random_graph(self):
        net = random_network(200, 600, seed=2)
        forest_of, oriented, partition = forest_decomposition(net)
        count = verify_forests(net, forest_of, oriented)
        assert count <= (2 + 0.5) * partition.arboricity_bound

    def test_orientation_acyclic_by_rank(self, hard_instance):
        net = hard_instance.network
        partition = h_partition(net, 8)
        oriented = acyclic_orientation(net, partition)
        for tail, head in oriented:
            assert (
                partition.class_of[tail], net.uids[tail]
            ) < (partition.class_of[head], net.uids[head])

    def test_verify_catches_double_out_edge(self):
        net = Network.from_edges(3, [(0, 1), (0, 2)])
        with pytest.raises(SubroutineError, match="two out-edges"):
            verify_forests(net, [0, 0], [(0, 1), (0, 2)])

    def test_verify_catches_cycle(self):
        net = Network.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(SubroutineError, match="cycle"):
            verify_forests(net, [0, 0, 0], [(0, 1), (1, 2), (2, 0)])
