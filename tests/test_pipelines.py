"""End-to-end tests for Theorems 1 and 2."""

from __future__ import annotations

import pytest

from repro import delta_color, verify_coloring
from repro.constants import AlgorithmParameters
from repro.core import delta_color_deterministic, delta_color_randomized
from repro.errors import GraphStructureError, NotDenseError
from repro.graphs import hard_clique_graph, hard_clique_torus, mixed_dense_graph
from repro.local import Network
from tests.conftest import random_network

PARAMS = AlgorithmParameters(epsilon=0.25)


class TestDeterministic:
    def test_all_hard_instance(self, hard_instance):
        result = delta_color_deterministic(hard_instance.network, params=PARAMS)
        verify_coloring(
            hard_instance.network, result.colors, hard_instance.delta
        )
        assert result.num_colors == 16
        assert result.rounds > 0

    def test_mixed_instance(self, mixed_instance):
        result = delta_color_deterministic(mixed_instance.network, params=PARAMS)
        verify_coloring(
            mixed_instance.network, result.colors, mixed_instance.delta
        )
        assert result.stats["easy_cliques"] == 10
        assert result.stats["easy_phase"]["loopholes"] == 10

    def test_seeded_instance(self):
        instance = hard_clique_graph(34, 16, seed=13)
        result = delta_color_deterministic(instance.network, params=PARAMS)
        verify_coloring(instance.network, result.colors, 16)

    def test_mostly_easy_instance(self):
        instance = mixed_dense_graph(34, 16, easy_fraction=0.9, seed=3)
        result = delta_color_deterministic(instance.network, params=PARAMS)
        verify_coloring(instance.network, result.colors, 16)

    def test_deterministic_is_reproducible(self, hard_instance):
        a = delta_color_deterministic(hard_instance.network, params=PARAMS)
        b = delta_color_deterministic(hard_instance.network, params=PARAMS)
        assert a.colors == b.colors
        assert a.rounds == b.rounds

    def test_phase_ledger_structure(self, hard_instance):
        result = delta_color_deterministic(hard_instance.network, params=PARAMS)
        breakdown = result.phase_rounds()
        assert {"acd", "classify", "hard"} <= set(breakdown)
        assert result.rounds == sum(breakdown.values())

    def test_torus_below_triad_regime_fails_loudly(self):
        """Delta = 4 cannot host two sub-cliques above the hypergraph
        rank, so the pipeline must refuse with a clear diagnosis instead
        of producing an improper coloring."""
        from repro.acd import compute_acd
        from repro.errors import InvariantViolation

        instance = hard_clique_torus(6, 6)
        params = AlgorithmParameters(epsilon=0.45)
        acd = compute_acd(instance.network, epsilon=0.45, eta=0.55)
        with pytest.raises(InvariantViolation, match="Delta is too small"):
            delta_color_deterministic(instance.network, params=params, acd=acd)

    def test_sparse_graph_rejected(self):
        net = random_network(60, 180, seed=5)
        with pytest.raises(NotDenseError):
            delta_color_deterministic(net, params=PARAMS)

    def test_delta_plus_one_clique_rejected(self):
        net = Network.from_edges(
            4, [(i, j) for i in range(4) for j in range(i + 1, 4)]
        )
        with pytest.raises(GraphStructureError):
            delta_color_deterministic(net, params=PARAMS)

    def test_tiny_delta_rejected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(GraphStructureError, match="Delta"):
            delta_color_deterministic(net)


class TestRandomized:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_seeds(self, hard_instance, seed):
        result = delta_color_randomized(
            hard_instance.network, params=PARAMS, seed=seed
        )
        verify_coloring(hard_instance.network, result.colors, 16)

    def test_mixed_instance(self, mixed_instance):
        result = delta_color_randomized(
            mixed_instance.network, params=PARAMS, seed=7
        )
        verify_coloring(mixed_instance.network, result.colors, 16)

    def test_seed_reproducibility(self, hard_instance):
        a = delta_color_randomized(hard_instance.network, params=PARAMS, seed=11)
        b = delta_color_randomized(hard_instance.network, params=PARAMS, seed=11)
        assert a.colors == b.colors

    def test_components_path(self, hard_instance):
        """Low activation probability forces shattered components through
        the modified deterministic post-shattering."""
        exercised = False
        for seed in range(8):
            result = delta_color_randomized(
                hard_instance.network, params=PARAMS, seed=seed,
                activation_probability=0.02,
            )
            verify_coloring(hard_instance.network, result.colors, 16)
            if result.stats["shattering"]["bad_cliques"] > 0:
                exercised = True
        assert exercised

    def test_large_delta_branch(self, hard_instance):
        result = delta_color_randomized(
            hard_instance.network, params=PARAMS, seed=1,
            force_branch="large-delta",
        )
        verify_coloring(hard_instance.network, result.colors, 16)
        assert result.stats["branch"] == "large-delta"

    def test_randomized_faster_than_deterministic(self, hard_instance):
        det = delta_color_deterministic(hard_instance.network, params=PARAMS)
        rand = delta_color_randomized(
            hard_instance.network, params=PARAMS, seed=0
        )
        assert rand.rounds < det.rounds

    def test_unknown_branch_rejected(self, hard_instance):
        with pytest.raises(ValueError, match="branch"):
            delta_color_randomized(
                hard_instance.network, params=PARAMS, seed=0,
                force_branch="quantum",
            )


class TestPublicApi:
    def test_dispatch_deterministic(self, hard_instance):
        result = delta_color(hard_instance.network, epsilon=0.25)
        assert result.algorithm.startswith("deterministic")

    def test_dispatch_randomized(self, hard_instance):
        result = delta_color(
            hard_instance.network, method="randomized", epsilon=0.25, seed=0
        )
        assert result.algorithm.startswith("randomized")

    def test_unknown_method(self, hard_instance):
        with pytest.raises(ValueError, match="method"):
            delta_color(hard_instance.network, method="magic")

    def test_params_override_epsilon(self, hard_instance):
        result = delta_color(hard_instance.network, params=PARAMS, epsilon=0.5)
        verify_coloring(hard_instance.network, result.colors, 16)


@pytest.mark.slow
class TestPaperScale:
    def test_paper_constants_deterministic(self):
        instance = hard_clique_graph(130, 63, seed=1)
        result = delta_color_deterministic(instance.network)
        verify_coloring(instance.network, result.colors, 63)
        assert result.stats["phase1"]["heg_ratio"] > 1.1
        assert result.stats["phase2"]["incoming_bound_satisfied"]

    def test_paper_constants_randomized(self):
        instance = hard_clique_graph(130, 63, seed=1)
        result = delta_color_randomized(instance.network, seed=0)
        verify_coloring(instance.network, result.colors, 63)
