"""Tests for the benchmark harness helpers."""

from __future__ import annotations

import json

from repro.bench import (
    bench_params,
    format_table,
    hard_workload,
    mixed_workload,
    result_row,
    save_artifact,
    workload_acd,
)
from repro.bench.harness import ARTIFACT_DIR
from repro.local import RoundLedger
from repro.types import ColoringResult


class TestTables:
    def test_alignment_and_title(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert all(len(line) >= 4 for line in lines[2:])

    def test_float_formatting(self):
        table = format_table(["x"], [[1.23456]])
        assert "1.23" in table and "1.2345" not in table

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestWorkloads:
    def test_hard_workload_cached(self):
        a = hard_workload(34, 16)
        b = hard_workload(34, 16)
        assert a is b

    def test_mixed_workload(self):
        instance = mixed_workload(34, 16, 0.25, 1)
        assert instance.meta["easy_fraction"] == 0.25

    def test_acd_for_mixed(self):
        acd = workload_acd(34, 16, 0.25, 1, easy_fraction=0.25)
        assert acd.num_cliques == 34

    def test_params(self):
        assert bench_params(0.5).epsilon == 0.5


class TestHarness:
    def test_result_row_and_artifact(self, tmp_path, monkeypatch):
        ledger = RoundLedger()
        ledger.charge("hard/x", 3, 1)
        result = ColoringResult(
            colors=[0], num_colors=1, ledger=ledger, algorithm="algo",
            stats={"n": 1, "delta": 0},
        )
        row = result_row("case", result)
        assert row["rounds"] == 3 and row["label"] == "case"

        monkeypatch.setattr(
            "repro.bench.harness.ARTIFACT_DIR", tmp_path / "artifacts"
        )
        path = save_artifact("unit", [row])
        assert json.loads(path.read_text())[0]["algorithm"] == "algo"

    def test_artifact_dir_points_at_benchmarks(self):
        assert ARTIFACT_DIR.parts[-2:] == ("benchmarks", "artifacts")
