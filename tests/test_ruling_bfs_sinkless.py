"""Tests for ruling sets, BFS layering, and sinkless orientation."""

from __future__ import annotations

import pytest

from repro.errors import SubroutineError
from repro.local import Network
from repro.subroutines import (
    bfs_layers,
    layers_to_lists,
    power_network,
    ruling_set,
    sinkless_orientation,
    verify_ruling_set,
    verify_sinkless,
)
from tests.conftest import random_network


class TestRulingSet:
    def test_mis_is_valid_six_ruling_set(self):
        net = random_network(100, 300, seed=1)
        membership, _ = ruling_set(net, 6)
        verify_ruling_set(net, membership, 6)

    def test_spaced_variant(self):
        net = random_network(100, 250, seed=2)
        membership, result = ruling_set(net, 6, spacing=2)
        verify_ruling_set(net, membership, 6, spacing=2)

    def test_spacing_scales_rounds(self):
        net = random_network(60, 150, seed=3)
        _, base_result = ruling_set(net, 2, deterministic=False, seed=1)
        _, power_result = ruling_set(
            net, 4, spacing=3, deterministic=False, seed=1
        )
        assert power_result.rounds % 3 == 0

    def test_invalid_radius_rejected(self):
        net = random_network(10, 20, seed=4)
        with pytest.raises(SubroutineError):
            ruling_set(net, 0)

    def test_verify_detects_uncovered(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(SubroutineError, match="dominate"):
            verify_ruling_set(net, [True, False, False, False], 1)

    def test_verify_detects_close_pair(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(SubroutineError, match="independent"):
            verify_ruling_set(net, [True, False, True], 2, spacing=2)


class TestPowerNetwork:
    def test_square_of_path(self):
        net = Network.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        power, scale = power_network(net, 2)
        assert scale == 2
        assert sorted(power.adjacency[0]) == [1, 2]


class TestBfsLayers:
    def test_single_source(self):
        net = Network.from_edges(5, [(i, i + 1) for i in range(4)])
        depths, result = bfs_layers(net, [0])
        assert depths == [0, 1, 2, 3, 4]
        assert result.rounds == 4

    def test_multi_source(self):
        net = Network.from_edges(5, [(i, i + 1) for i in range(4)])
        depths, _ = bfs_layers(net, [0, 4])
        assert depths == [0, 1, 2, 1, 0]

    def test_max_depth_cutoff(self):
        net = Network.from_edges(5, [(i, i + 1) for i in range(4)])
        depths, _ = bfs_layers(net, [0], max_depth=2)
        assert depths == [0, 1, 2, None, None]

    def test_unreachable_is_none(self):
        net = Network.from_edges(4, [(0, 1), (2, 3)])
        depths, _ = bfs_layers(net, [0])
        assert depths[2] is None and depths[3] is None

    def test_layers_to_lists(self):
        assert layers_to_lists([0, 1, 1, None, 2]) == [[0], [1, 2], [4]]

    def test_layers_to_lists_empty(self):
        assert layers_to_lists([None, None]) == []


class TestSinkless:
    def test_three_regular_ring(self):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        edges += [(i, (i + 7) % 20) for i in range(20)]
        net = Network.from_edges(20, edges)
        oriented, _ = sinkless_orientation(net)
        verify_sinkless(net, oriented)

    def test_randomized_variant(self):
        edges = [(i, (i + 1) % 30) for i in range(30)]
        edges += [(i, (i + 11) % 30) for i in range(30)]
        net = Network.from_edges(30, edges)
        oriented, _ = sinkless_orientation(net, deterministic=False, seed=2)
        verify_sinkless(net, oriented)

    def test_low_degree_rejected(self):
        net = Network.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(SubroutineError, match="degree"):
            sinkless_orientation(net)

    def test_every_edge_oriented_once(self):
        edges = [(i, (i + 1) % 12) for i in range(12)]
        edges += [(i, (i + 5) % 12) for i in range(12)]
        net = Network.from_edges(12, edges)
        oriented, _ = sinkless_orientation(net)
        assert len(oriented) == net.edge_count
        canonical = {(min(a, b), max(a, b)) for a, b in oriented}
        assert canonical == set(net.edges())


class TestDigitRulingSet:
    def test_valid_at_multiple_bases(self):
        from repro.subroutines import digit_ruling_set

        net = random_network(150, 450, seed=9)
        for base in (2, 4, 8):
            membership, radius, result = digit_ruling_set(net, base)
            verify_ruling_set(net, membership, radius)
            assert sum(membership) > 0

    def test_rounds_shrink_with_base(self):
        from repro.subroutines import digit_ruling_set

        net = random_network(200, 600, seed=10)
        _, _, slow = digit_ruling_set(net, 2)
        _, _, fast = digit_ruling_set(net, 16)
        assert fast.rounds < slow.rounds

    def test_independence_is_strict(self):
        from repro.subroutines import digit_ruling_set

        net = random_network(100, 300, seed=11)
        membership, _, _ = digit_ruling_set(net, 4)
        for v in range(net.n):
            if membership[v]:
                assert not any(membership[u] for u in net.adjacency[v])

    def test_base_one_rejected(self):
        import pytest as _pytest

        from repro.subroutines import digit_ruling_set

        net = random_network(10, 20, seed=12)
        with _pytest.raises(SubroutineError):
            digit_ruling_set(net, 1)

    def test_empty_network(self):
        from repro.subroutines import digit_ruling_set

        from repro.local import Network

        net = Network.from_edges(0, [])
        membership, radius, result = digit_ruling_set(net, 2)
        assert membership == []
