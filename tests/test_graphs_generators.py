"""Tests for the instance generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphStructureError
from repro.graphs import (
    check_instance,
    clique_blowup,
    count_inter_clique_multiplicity,
    hard_clique_graph,
    hard_clique_torus,
    isolated_cliques,
    mixed_dense_graph,
    regular_bipartite_graph,
)


class TestRegularBipartite:
    def test_degrees(self):
        adjacency = regular_bipartite_graph(10, 4)
        assert all(len(nbrs) == 4 for nbrs in adjacency)

    def test_simple(self):
        adjacency = regular_bipartite_graph(10, 4)
        assert all(len(set(nbrs)) == len(nbrs) for nbrs in adjacency)

    def test_bipartite(self):
        half = 8
        adjacency = regular_bipartite_graph(half, 3)
        for left in range(half):
            assert all(nbr >= half for nbr in adjacency[left])

    def test_randomized_still_regular_and_simple(self):
        import random

        adjacency = regular_bipartite_graph(20, 18, random.Random(3))
        assert all(len(nbrs) == 18 for nbrs in adjacency)
        assert all(len(set(nbrs)) == len(nbrs) for nbrs in adjacency)

    def test_degree_exceeding_half_rejected(self):
        with pytest.raises(GraphStructureError):
            regular_bipartite_graph(3, 4)


class TestHardCliqueGraph:
    def test_structure_small(self, hard_instance):
        check_instance(hard_instance)
        assert hard_instance.delta == 16
        assert hard_instance.num_cliques == 34
        assert hard_instance.n == 34 * 16

    def test_single_inter_clique_edge(self, hard_instance):
        assert count_inter_clique_multiplicity(hard_instance) == 1

    def test_every_vertex_has_one_external_edge(self, hard_instance):
        owner = hard_instance.clique_of()
        network = hard_instance.network
        for v in range(network.n):
            external = [
                u for u in network.adjacency[v] if owner[u] != owner[v]
            ]
            assert len(external) == 1

    def test_seeded_generation_is_reproducible(self):
        a = hard_clique_graph(34, 16, seed=5)
        b = hard_clique_graph(34, 16, seed=5)
        assert a.network.edges() == b.network.edges()

    def test_different_seeds_differ(self):
        a = hard_clique_graph(34, 16, seed=5)
        b = hard_clique_graph(34, 16, seed=6)
        assert a.network.edges() != b.network.edges()

    def test_external_degree_two(self):
        instance = hard_clique_graph(64, 16, external_per_vertex=2, seed=1)
        check_instance(instance)
        owner = instance.clique_of()
        for v in range(instance.n):
            external = [
                u
                for u in instance.network.adjacency[v]
                if owner[u] != owner[v]
            ]
            assert len(external) == 2

    def test_odd_clique_count_rejected(self):
        with pytest.raises(GraphStructureError, match="even"):
            hard_clique_graph(33, 16)

    def test_too_few_cliques_rejected(self):
        with pytest.raises(GraphStructureError, match="num_cliques"):
            hard_clique_graph(10, 16)


class TestOtherGenerators:
    def test_torus(self):
        instance = hard_clique_torus(4, 4)
        check_instance(instance)
        assert instance.delta == 4
        assert instance.num_cliques == 16

    def test_torus_rejects_odd_dimensions(self):
        with pytest.raises(GraphStructureError):
            hard_clique_torus(3, 4)

    def test_isolated_cliques(self):
        instance = isolated_cliques(3, 5)
        assert instance.delta == 4
        assert instance.network.edge_count == 3 * 10

    def test_mixed_marks_easy_cliques(self, mixed_instance):
        easy = mixed_instance.meta["easy_cliques"]
        assert len(easy) == round(0.3 * 34)
        check_instance(mixed_instance, expect_regular=False)
        owner = mixed_instance.clique_of()
        degrees = [
            mixed_instance.network.degree(v) for v in range(mixed_instance.n)
        ]
        low = [v for v, d in enumerate(degrees) if d < 16]
        assert len(low) == 2 * len(easy)
        assert {owner[v] for v in low} == set(easy)

    def test_mixed_fraction_bounds(self):
        with pytest.raises(GraphStructureError):
            mixed_dense_graph(34, 16, easy_fraction=1.5)

    def test_blowup_rejects_wrong_degree(self):
        clique_graph = [[1], [0]]  # degree 1, but clique size 2 * k 1 = 2
        with pytest.raises(GraphStructureError, match="degree"):
            clique_blowup(clique_graph, 2, 1)

    def test_blowup_rejects_parallel_edges(self):
        clique_graph = [[1, 1], [0, 0]]
        with pytest.raises(GraphStructureError, match="parallel"):
            clique_blowup(clique_graph, 2, 1)


class TestProjectivePlane:
    def test_structure(self):
        from repro.graphs import projective_plane_clique_graph

        instance = projective_plane_clique_graph(5)
        check_instance(instance)
        assert instance.delta == 6
        assert instance.num_cliques == 2 * (25 + 5 + 1)
        assert count_inter_clique_multiplicity(instance) == 1

    def test_girth_six_clique_graph(self):
        """No two cliques share a neighbor pair (girth >= 6: any two
        clique-graph nodes have at most one common neighbor)."""
        from itertools import combinations

        from repro.graphs import projective_plane_clique_graph

        instance = projective_plane_clique_graph(3)
        neighbor_sets = [set(nbrs) for nbrs in instance.clique_graph]
        for a, b in combinations(range(instance.num_cliques), 2):
            assert len(neighbor_sets[a] & neighbor_sets[b]) <= 1

    def test_all_cliques_hard(self):
        from repro.acd import compute_acd
        from repro.core import classify_cliques
        from repro.graphs import projective_plane_clique_graph

        instance = projective_plane_clique_graph(7)
        acd = compute_acd(instance.network, epsilon=0.2)
        classification = classify_cliques(instance.network, acd)
        assert len(classification.hard) == instance.num_cliques

    def test_composite_q_rejected(self):
        from repro.graphs import projective_plane_clique_graph

        with pytest.raises(GraphStructureError, match="prime"):
            projective_plane_clique_graph(4)


class TestHeterogeneousCliques:
    def test_structure(self):
        from repro.graphs import heterogeneous_hard_cliques

        instance = heterogeneous_hard_cliques(2, 16, seed=1)
        check_instance(instance)
        assert instance.delta == 16
        sizes = {len(c) for c in instance.cliques}
        assert sizes == {15, 16}

    def test_heterogeneous_external_counts(self):
        from repro.graphs import heterogeneous_hard_cliques

        instance = heterogeneous_hard_cliques(2, 16, seed=1)
        owner = instance.clique_of()
        net = instance.network
        externals = set()
        for v in range(net.n):
            count = sum(1 for u in net.adjacency[v] if owner[u] != owner[v])
            externals.add(count)
        assert externals == {1, 2}  # e_C = 1 for larges, 2 for smalls

    def test_pipelines_color_it(self):
        from repro.constants import AlgorithmParameters
        from repro.core import delta_color_deterministic
        from repro.graphs import heterogeneous_hard_cliques
        from repro.verify import verify_coloring

        # Small cliques (size Delta - 1) need epsilon >= 4 / Delta for
        # the ACD size lower bound (1 - eps/4) * Delta; Delta = 16 with
        # epsilon = 1/4 sits exactly on that boundary.
        instance = heterogeneous_hard_cliques(1, 16, seed=2)
        result = delta_color_deterministic(
            instance.network, params=AlgorithmParameters(epsilon=0.25)
        )
        verify_coloring(instance.network, result.colors, 16)

    def test_bad_parameters_rejected(self):
        from repro.graphs import heterogeneous_hard_cliques

        with pytest.raises(GraphStructureError):
            heterogeneous_hard_cliques(0, 16)
        with pytest.raises(GraphStructureError):
            heterogeneous_hard_cliques(1, 3)
